//! The campaign engine: declarative benchmark × scheme × config grids
//! executed on a work-stealing thread pool with deterministic results.
//!
//! Every paper figure is a *campaign* — a cross-product of benchmarks,
//! schemes and parameter sweeps. This module turns that cross-product into
//! an explicit [`Campaign`] of [`Cell`]s, runs the cells on `jobs` worker
//! threads, and returns a [`CampaignReport`] whose cells appear in
//! enumeration order regardless of how the pool scheduled them.
//!
//! ## Determinism
//!
//! Three properties make parallel and serial campaign runs bit-identical:
//!
//! 1. **Cells are independent.** Each cell builds its own kernel, EPC and
//!    workload; nothing is shared between worker threads but the queue.
//! 2. **Per-cell seeds are positional.** Under [`SeedMode::PerCell`] the
//!    cell at index `i` runs with `derive_cell_seed(campaign_seed, i)` — a
//!    SplitMix64-style hash — so its workload depends only on the campaign
//!    seed and its position, never on scheduling. [`SeedMode::Shared`]
//!    instead gives every cell the campaign seed verbatim, which keeps
//!    A/B comparisons (scheme vs baseline on the *same* workload stream)
//!    meaningful; it is what the figure benches use.
//! 3. **Results are collected by index.** Workers write into a
//!    pre-sized slot table, so the report order is the cell order.
//!
//! Wall-clock time is recorded per cell but excluded from
//! [`CampaignReport::to_canonical_json`], which is the representation the
//! golden-report regression harness compares.
//!
//! # Examples
//!
//! ```
//! use sgx_preload_core::{Campaign, Scheme, SimConfig};
//! use sgx_workloads::{Benchmark, Scale};
//!
//! let cfg = SimConfig::at_scale(Scale::DEV);
//! let campaign = Campaign::grid(
//!     "doc",
//!     7,
//!     &[Benchmark::Microbenchmark],
//!     &[Scheme::Baseline, Scheme::Dfp],
//!     cfg,
//! );
//! let serial = campaign.run_serial()?;
//! let parallel = campaign.run_with_jobs(4)?;
//! assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
//! # Ok::<(), sgx_preload_core::CampaignError>(())
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use sgx_dfp::PredictorKind;
use sgx_kernel::{
    ChaosSchedule, ChromeTraceSink, CountingSink, EventCounts, JsonlWriterSink, SeriesFormat,
    TenantPolicy, TimeSeriesSink, TraceSink,
};
use sgx_observer::{LeakageReport, ObserverSink, OramModel};
use sgx_workloads::{AccessIter, Benchmark, PageRange, SecretBit, SecretPair};

use crate::replay::TraceReplay;
use crate::report::push_json_str;
use crate::simulator::AppSpec;
use crate::{RunReport, Scheme, SimConfig, SimError, SimRun};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "SGX_PRELOAD_JOBS";

/// Derives the seed for the cell at `cell_index` from the campaign seed —
/// the same stable SplitMix64-style hash ([`sgx_sim::mix`]) the chaos
/// layer forks its capability streams with, so the mapping is identical
/// across runs, platforms and worker counts.
pub fn derive_cell_seed(campaign_seed: u64, cell_index: usize) -> u64 {
    sgx_sim::mix(campaign_seed, cell_index as u64)
}

/// Resolves the worker count: explicit request, else [`JOBS_ENV`], else
/// the machine's available parallelism (min 1).
pub fn effective_jobs(requested: Option<usize>) -> usize {
    if let Some(j) = requested {
        return j.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(j) = v.parse::<usize>() {
            return j.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A cell that failed to run, with enough context to find it: the label
/// and enumeration index of the offending cell plus the underlying
/// [`SimError`]. Returned by the `Campaign::run*` family; when several
/// cells fail in one parallel run, the error reported is the failing cell
/// with the lowest index, so serial and parallel runs agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Enumeration index of the failing cell.
    pub index: usize,
    /// Label of the failing cell.
    pub label: String,
    /// What went wrong inside the cell.
    pub source: SimError,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign cell {} (index {}): {}",
            self.label, self.index, self.source
        )
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Locks a mutex, tolerating poison: a panicking sibling worker must not
/// cascade into a second panic while the first unwinds — the original
/// panic is the error the caller sees.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(0..n)` on a `jobs`-worker work-stealing pool and returns the
/// results in index order regardless of scheduling. This is the pool
/// behind [`Campaign::run_with_jobs`] and the fleet layer's host shards:
/// per-worker deques are round-robin seeded, and an idle worker steals
/// from the back of the fullest sibling. `f` must produce a result that
/// depends only on its index for parallel runs to stay deterministic.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..n).step_by(jobs).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = pop_or_steal(queues, w) {
                    *lock_clean(&slots[i]) = Some(f(i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            lock_clean(&slot)
                .take()
                .expect("every queued index produced a result")
        })
        .collect()
}

/// How cells derive their workload seeds from the campaign seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Cell `i` runs with `derive_cell_seed(campaign_seed, i)`:
    /// decorrelated workloads across cells (the default).
    PerCell,
    /// Every cell runs with the campaign seed verbatim: cells that build
    /// the same benchmark see the *same* workload stream, which is what
    /// scheme-vs-baseline comparisons need.
    Shared,
}

/// A leakage-observatory cell: both variants of one secret pair run
/// under the cell's scheme, watched by the untrusted-OS observer, and
/// the cell's result carries a [`LeakageReport`] comparing what the OS
/// saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakageSpec {
    /// The secret pair to run (also supplies the ORAM row's footprint).
    pub pair: SecretPair,
    /// Windowed-entropy window, in faults.
    pub window: usize,
    /// When set, both secret labels run the **same** ORAM-style padded
    /// stream ([`OramModel`]) instead of the pair's secret-dependent
    /// variants — the known-private reference row (distinguishability
    /// exactly 0).
    pub oram: bool,
}

/// The workload a campaign cell runs: a synthetic benchmark model, a
/// recorded trace replayed through the simulator, or a secret-pair
/// leakage measurement.
#[derive(Debug, Clone)]
pub enum CellWork {
    /// A synthetic benchmark model.
    Bench(Benchmark),
    /// A recorded-trace replay (see [`TraceReplay`]).
    Replay(TraceReplay),
    /// A secret-pair leakage measurement (see [`LeakageSpec`]).
    Leakage(LeakageSpec),
}

impl CellWork {
    /// The workload's display name: the benchmark's paper name, the
    /// replay's label, or the secret pair's name.
    pub fn name(&self) -> &str {
        match self {
            CellWork::Bench(b) => b.name(),
            CellWork::Replay(r) => r.label(),
            CellWork::Leakage(spec) => spec.pair.name(),
        }
    }
}

/// One campaign cell: a workload, a scheme, and the full configuration
/// it runs under.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label (`work/scheme` by default, extendable for sweeps).
    pub label: String,
    /// The workload to run.
    pub work: CellWork,
    /// The scheme arming the kernel.
    pub scheme: Scheme,
    /// Full configuration; the campaign overrides its `seed` according to
    /// the [`SeedMode`].
    pub cfg: SimConfig,
}

impl Cell {
    /// A cell labeled `bench/scheme`.
    pub fn new(bench: Benchmark, scheme: Scheme, cfg: SimConfig) -> Self {
        Cell {
            label: format!("{}/{}", bench.name(), scheme.name()),
            work: CellWork::Bench(bench),
            scheme,
            cfg,
        }
    }

    /// A cell replaying a recorded trace, labeled `label/scheme`. With a
    /// source-declared replay ([`TraceReplay::of_benchmark`]) the cell is
    /// indistinguishable — label and report alike — from the equivalent
    /// [`Cell::new`] cell run on the recording's seed.
    pub fn replay(replay: TraceReplay, scheme: Scheme, cfg: SimConfig) -> Self {
        Cell {
            label: format!("{}/{}", replay.label(), scheme.name()),
            work: CellWork::Replay(replay),
            scheme,
            cfg,
        }
    }

    /// A leakage-observatory cell, labeled `pair/scheme` (or `pair/oram`
    /// for the reference row).
    pub fn leakage(spec: LeakageSpec, scheme: Scheme, cfg: SimConfig) -> Self {
        let label = if spec.oram {
            format!("{}/oram", spec.pair.name())
        } else {
            format!("{}/{}", spec.pair.name(), scheme.name())
        };
        Cell {
            label,
            work: CellWork::Leakage(spec),
            scheme,
            cfg,
        }
    }

    /// Replaces the label (sweep cells append their parameter, e.g.
    /// `deepsjeng/SIP/threshold=5%`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A declarative set of cells plus the campaign seed and seeding mode.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (report header and JSON `campaign` field).
    pub name: String,
    /// Master seed all per-cell seeds derive from.
    pub seed: u64,
    seed_mode: SeedMode,
    trace_dir: Option<PathBuf>,
    timeline_dir: Option<PathBuf>,
    cells: Vec<Cell>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign {
            name: name.into(),
            seed,
            seed_mode: SeedMode::PerCell,
            trace_dir: None,
            timeline_dir: None,
            cells: Vec::new(),
        }
    }

    /// The full `benches × schemes` cross-product over one base config,
    /// enumerated benchmark-major (all schemes of a benchmark are
    /// adjacent).
    pub fn grid(
        name: impl Into<String>,
        seed: u64,
        benches: &[Benchmark],
        schemes: &[Scheme],
        cfg: SimConfig,
    ) -> Self {
        let mut c = Campaign::new(name, seed);
        for &bench in benches {
            for &scheme in schemes {
                c.push(Cell::new(bench, scheme, cfg));
            }
        }
        c
    }

    /// The full `replays × schemes` cross-product over one base config,
    /// enumerated replay-major — the trace-driven twin of
    /// [`Campaign::grid`]. Combine with [`SeedMode::Shared`] when the
    /// replays were recorded at the campaign seed, so source-declared
    /// replays reproduce the generator grid byte-for-byte.
    pub fn replay_grid(
        name: impl Into<String>,
        seed: u64,
        replays: &[TraceReplay],
        schemes: &[Scheme],
        cfg: SimConfig,
    ) -> Self {
        let mut c = Campaign::new(name, seed);
        for replay in replays {
            for &scheme in schemes {
                c.push(Cell::replay(replay.clone(), scheme, cfg));
            }
        }
        c
    }

    /// The `benches × schemes × chaos` cross-product: [`Campaign::grid`]
    /// extended with a third axis of named [`ChaosSchedule`]s. Cells are
    /// labeled `bench/scheme/chaos=<name>` and enumerated
    /// benchmark-major, then scheme, then schedule — so a schedule's
    /// cells for one bench/scheme pair are adjacent and A/B comparisons
    /// against a `("none", ChaosSchedule::none())` column line up.
    pub fn chaos_grid(
        name: impl Into<String>,
        seed: u64,
        benches: &[Benchmark],
        schemes: &[Scheme],
        cfg: SimConfig,
        chaos: &[(&str, ChaosSchedule)],
    ) -> Self {
        let mut c = Campaign::new(name, seed);
        for &bench in benches {
            for &scheme in schemes {
                for (label, sched) in chaos {
                    let cell = Cell::new(bench, scheme, cfg.with_chaos(*sched))
                        .with_label(format!("{}/{}/chaos={label}", bench.name(), scheme.name()));
                    c.push(cell);
                }
            }
        }
        c
    }

    /// The `benches × schemes × tenant-policy` cross-product:
    /// [`Campaign::grid`] extended with a third axis of named
    /// [`TenantPolicy`]s. Cells are labeled `bench/scheme/tenant=<name>`
    /// and enumerated benchmark-major, then scheme, then policy — so a
    /// policy's cells for one bench/scheme pair are adjacent and A/B
    /// comparisons against a `("none", TenantPolicy::none())` column line
    /// up.
    pub fn tenant_grid(
        name: impl Into<String>,
        seed: u64,
        benches: &[Benchmark],
        schemes: &[Scheme],
        cfg: SimConfig,
        tenants: &[(&str, TenantPolicy)],
    ) -> Self {
        let mut c = Campaign::new(name, seed);
        for &bench in benches {
            for &scheme in schemes {
                for (label, policy) in tenants {
                    let cell = Cell::new(bench, scheme, cfg.with_tenant_policy(*policy))
                        .with_label(format!("{}/{}/tenant={label}", bench.name(), scheme.name()));
                    c.push(cell);
                }
            }
        }
        c
    }

    /// The `benches × schemes × predictor` cross-product:
    /// [`Campaign::grid`] extended with a third axis of
    /// [`PredictorKind`]s — the predictor-zoo ablation. Cells are labeled
    /// `bench/scheme/pred=<kind>` and enumerated benchmark-major, then
    /// scheme, then predictor — so one bench/scheme pair's predictors are
    /// adjacent and rows line up across schemes. Schemes that run no
    /// predictor (e.g. [`Scheme::Baseline`]) still get one cell per kind,
    /// so every comparison column is complete; those cells simply ignore
    /// the predictor.
    pub fn predictor_grid(
        name: impl Into<String>,
        seed: u64,
        benches: &[Benchmark],
        schemes: &[Scheme],
        cfg: SimConfig,
        predictors: &[PredictorKind],
    ) -> Self {
        let mut c = Campaign::new(name, seed);
        for &bench in benches {
            for &scheme in schemes {
                for &kind in predictors {
                    let cell = Cell::new(bench, scheme, cfg.with_predictor(kind))
                        .with_label(format!("{}/{}/pred={kind}", bench.name(), scheme.name()));
                    c.push(cell);
                }
            }
        }
        c
    }

    /// The `pairs × (schemes + oram)` leakage grid: for every secret
    /// pair, one leakage cell per scheme (labeled `pair/scheme`) plus
    /// the ORAM-style known-private reference row (`pair/oram`, run at
    /// the pair's footprint under [`Scheme::Baseline`]). Enumerated
    /// pair-major so one pair's scheme rows are adjacent.
    ///
    /// The campaign is forced to [`SeedMode::Shared`]: distinguishing a
    /// scheme's leakage from the baseline's only makes sense when every
    /// cell of a pair runs the *same* secret-dependent workload streams.
    pub fn leakage_grid(
        name: impl Into<String>,
        seed: u64,
        pairs: &[SecretPair],
        schemes: &[Scheme],
        cfg: SimConfig,
        window: usize,
    ) -> Self {
        let mut c = Campaign::new(name, seed).with_seed_mode(SeedMode::Shared);
        for &pair in pairs {
            for &scheme in schemes {
                c.push(Cell::leakage(
                    LeakageSpec {
                        pair,
                        window,
                        oram: false,
                    },
                    scheme,
                    cfg,
                ));
            }
            c.push(Cell::leakage(
                LeakageSpec {
                    pair,
                    window,
                    oram: true,
                },
                Scheme::Baseline,
                cfg,
            ));
        }
        c
    }

    /// Selects how cells derive their seeds (default
    /// [`SeedMode::PerCell`]).
    pub fn with_seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Streams every cell's paging events to
    /// `<dir>/<index>_<label>.jsonl` (one JSONL file per cell, labels
    /// sanitized to filename-safe characters). The directory is created on
    /// demand; a cell whose file cannot be opened runs untraced with a
    /// warning on stderr. Tracing never affects the measured results or
    /// the canonical JSON.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Writes per-cell timeline artifacts into `dir`: a perfetto-loadable
    /// Chrome trace (`<index>_<label>.chrome.json`) and a gauge time
    /// series (`<index>_<label>.series.csv`). Cells whose config leaves
    /// [`SimConfig::series_interval`] at `0` sample every
    /// [`DEFAULT_TIMELINE_SERIES_INTERVAL`] cycles so the series is never
    /// empty. Like tracing, timelines never affect measured results or
    /// canonical JSON.
    pub fn with_timeline_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.timeline_dir = Some(dir.into());
        self
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: Cell) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// The cells in enumeration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the campaign has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The seed the cell at `index` will run with.
    pub fn cell_seed(&self, index: usize) -> u64 {
        match self.seed_mode {
            SeedMode::PerCell => derive_cell_seed(self.seed, index),
            SeedMode::Shared => self.seed,
        }
    }

    /// Runs the campaign with [`effective_jobs`]`(None)` workers.
    ///
    /// # Errors
    ///
    /// [`CampaignError`] for the lowest-indexed cell whose run failed.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        self.run_with_jobs(effective_jobs(None))
    }

    /// Runs every cell on the calling thread, in order (the reference
    /// execution the regression harness compares parallel runs against).
    ///
    /// # Errors
    ///
    /// [`CampaignError`] for the first cell whose run failed; later cells
    /// do not run.
    pub fn run_serial(&self) -> Result<CampaignReport, CampaignError> {
        let t0 = Instant::now();
        let mut cells = Vec::with_capacity(self.cells.len());
        for (i, cell) in self.cells.iter().enumerate() {
            cells.push(run_cell(
                cell,
                i,
                self.cell_seed(i),
                self.trace_dir.as_deref(),
                self.timeline_dir.as_deref(),
            )?);
        }
        Ok(self.assemble(cells, 1, t0))
    }

    /// Runs the campaign on a `jobs`-worker work-stealing pool (see
    /// [`run_indexed`]). Results are returned in cell order regardless of
    /// scheduling.
    ///
    /// # Errors
    ///
    /// [`CampaignError`] for the lowest-indexed cell whose run failed —
    /// the same cell a serial run would report first, so error behaviour
    /// is scheduling-independent too. Every queued cell still runs.
    pub fn run_with_jobs(&self, jobs: usize) -> Result<CampaignReport, CampaignError> {
        let jobs = jobs.max(1);
        if jobs == 1 || self.cells.len() <= 1 {
            let mut r = self.run_serial()?;
            r.jobs = jobs;
            return Ok(r);
        }
        let t0 = Instant::now();
        let results = run_indexed(self.cells.len(), jobs, |i| {
            run_cell(
                &self.cells[i],
                i,
                self.cell_seed(i),
                self.trace_dir.as_deref(),
                self.timeline_dir.as_deref(),
            )
        });
        let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(self.assemble(cells, jobs, t0))
    }

    fn assemble(&self, cells: Vec<CellReport>, jobs: usize, t0: Instant) -> CampaignReport {
        CampaignReport {
            name: self.name.clone(),
            campaign_seed: self.seed,
            jobs,
            wall_nanos: t0.elapsed().as_nanos() as u64,
            cells,
        }
    }
}

/// Pops from worker `w`'s own deque, else steals from the back of the
/// fullest non-empty sibling. Returns `None` when every deque is empty.
fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = lock_clean(&queues[w]).pop_front() {
        return Some(i);
    }
    loop {
        let mut victim: Option<(usize, usize)> = None; // (queue, len)
        for (q, queue) in queues.iter().enumerate() {
            if q == w {
                continue;
            }
            let len = lock_clean(queue).len();
            if len > 0 && victim.map(|(_, l)| len > l).unwrap_or(true) {
                victim = Some((q, len));
            }
        }
        let (q, _) = victim?;
        // The victim may have drained between the scan and this lock;
        // rescan in that case.
        if let Some(i) = lock_clean(&queues[q]).pop_back() {
            return Some(i);
        }
    }
}

/// Replaces anything that doesn't belong in a filename with `-`.
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Opens the per-cell JSONL trace file, or explains why it could not.
fn open_cell_trace(
    dir: &Path,
    index: usize,
    label: &str,
) -> Option<JsonlWriterSink<impl std::io::Write>> {
    let path = dir.join(format!("{:03}_{}.jsonl", index, sanitize_label(label)));
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
        return None;
    }
    match JsonlWriterSink::create(&path) {
        Ok(sink) => Some(sink),
        Err(e) => {
            eprintln!(
                "warning: cell {label} runs untraced: {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// The gauge-sampling interval (cycles) timeline cells fall back to when
/// their config leaves [`SimConfig::series_interval`] unset.
pub const DEFAULT_TIMELINE_SERIES_INTERVAL: u64 = 100_000;

/// Opens the per-cell timeline sinks (Chrome trace + gauge series), or
/// explains why it could not.
fn open_cell_timeline(dir: &Path, index: usize, label: &str) -> Vec<Box<dyn TraceSink>> {
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create timeline dir {}: {e}", dir.display());
        return sinks;
    }
    let base = format!("{:03}_{}", index, sanitize_label(label));
    match ChromeTraceSink::create(dir.join(format!("{base}.chrome.json"))) {
        Ok(sink) => sinks.push(Box::new(sink)),
        Err(e) => eprintln!("warning: cell {label} has no chrome trace: {e}"),
    }
    match TimeSeriesSink::create(dir.join(format!("{base}.series.csv")), SeriesFormat::Csv) {
        Ok(sink) => sinks.push(Box::new(sink)),
        Err(e) => eprintln!("warning: cell {label} has no gauge series: {e}"),
    }
    sinks
}

/// Executes one cell: profiling (when SIP is armed), the measurement run,
/// and telemetry collection.
fn run_cell(
    cell: &Cell,
    index: usize,
    seed: u64,
    trace_dir: Option<&Path>,
    timeline_dir: Option<&Path>,
) -> Result<CellReport, CampaignError> {
    let mut cfg = cell.cfg.with_seed(seed);
    if timeline_dir.is_some() && cfg.series_interval == 0 {
        cfg = cfg.with_series_interval(DEFAULT_TIMELINE_SERIES_INTERVAL);
    }
    if let CellWork::Leakage(spec) = &cell.work {
        return run_leakage_cell(cell, *spec, &cfg, index, seed, trace_dir, timeline_dir);
    }
    let t0 = Instant::now();
    let (counting, counts) = CountingSink::new();
    let mut run = SimRun::new(&cfg).scheme(cell.scheme);
    run = match &cell.work {
        CellWork::Bench(bench) => run.bench(*bench),
        CellWork::Replay(replay) => run.replay(replay.clone()),
        CellWork::Leakage(_) => unreachable!("dispatched above"),
    };
    run = run.sink(Box::new(counting));
    if let Some(dir) = trace_dir {
        if let Some(sink) = open_cell_trace(dir, index, &cell.label) {
            run = run.sink(Box::new(sink) as Box<dyn TraceSink>);
        }
    }
    if let Some(dir) = timeline_dir {
        for sink in open_cell_timeline(dir, index, &cell.label) {
            run = run.sink(sink);
        }
    }
    // A user-level cell bypasses the kernel, so its sinks see no events
    // and the tallies stay zero — same behavior the event log had.
    let report = run.run_one().map_err(|e| CampaignError {
        index,
        label: cell.label.clone(),
        source: e,
    })?;
    let events = counts.get();
    Ok(CellReport {
        index,
        label: cell.label.clone(),
        seed,
        report,
        events,
        leakage: None,
        wall_nanos: t0.elapsed().as_nanos() as u64,
    })
}

/// Executes one leakage cell: both secret labels of the pair run under
/// the cell's scheme on the cell seed, each watched by the untrusted-OS
/// [`ObserverSink`], and the two observations are compared into a
/// [`LeakageReport`].
///
/// The SIP plan (when the scheme instruments) is compiled from the
/// pair's *train* stream — variant A on a decorrelated seed — exactly
/// once per program, never per secret, mirroring the paper's PGO flow.
/// Trace/timeline artifacts, when requested, capture variant A's run.
fn run_leakage_cell(
    cell: &Cell,
    spec: LeakageSpec,
    cfg: &SimConfig,
    index: usize,
    seed: u64,
    trace_dir: Option<&Path>,
    timeline_dir: Option<&Path>,
) -> Result<CellReport, CampaignError> {
    let t0 = Instant::now();
    let fail = |source: SimError| CampaignError {
        index,
        label: cell.label.clone(),
        source,
    };
    let oram = OramModel::paper_defaults();
    let elrange = if spec.oram {
        oram.scaled_pages(cfg.scale)
    } else {
        spec.pair.elrange_pages(cfg.scale)
    };
    let mut first: Option<(RunReport, EventCounts)> = None;
    let mut observations = Vec::with_capacity(2);
    for secret in SecretBit::BOTH {
        // The ORAM row feeds the *same* padded stream to both labels:
        // the observable pattern is secret-independent by construction.
        let stream: AccessIter = if spec.oram {
            oram.stream(cfg.scale, seed)
        } else {
            spec.pair.build(secret, cfg.scale, seed)
        };
        let plan = if cell.scheme.uses_sip() {
            let train: AccessIter = if spec.oram {
                oram.stream(cfg.scale, sgx_sim::mix(seed, 0x5EC7))
            } else {
                spec.pair.train(cfg.scale, seed)
            };
            let profile = sgx_sip::profile_stream(train, cfg.epc_pages as usize);
            sgx_sip::InstrumentationPlan::from_profile(&profile, cfg.sip)
        } else {
            sgx_sip::InstrumentationPlan::none()
        };
        let (observer, obs) = ObserverSink::new();
        let observer = observer.with_enclave(cell.work.name(), PageRange::new(0, elrange.max(1)));
        let (counting, counts) = CountingSink::new();
        let app = AppSpec::new(cell.work.name(), elrange, stream)
            .plan(plan)
            .build()
            .map_err(|e| fail(e.into()))?;
        let mut run = SimRun::new(cfg)
            .scheme(cell.scheme)
            .app(app)
            .sink(Box::new(observer))
            .sink(Box::new(counting));
        if secret == SecretBit::A {
            if let Some(dir) = trace_dir {
                if let Some(sink) = open_cell_trace(dir, index, &cell.label) {
                    run = run.sink(Box::new(sink) as Box<dyn TraceSink>);
                }
            }
            if let Some(dir) = timeline_dir {
                for sink in open_cell_timeline(dir, index, &cell.label) {
                    run = run.sink(sink);
                }
            }
        }
        let report = run.run_one().map_err(fail)?;
        if first.is_none() {
            first = Some((report, counts.get()));
        }
        observations.push(obs.borrow().clone());
    }
    let leakage = LeakageReport::from_observations(
        spec.pair.name(),
        spec.window,
        spec.oram,
        &observations[0],
        &observations[1],
    );
    let (report, events) = first.expect("variant A ran");
    Ok(CellReport {
        index,
        label: cell.label.clone(),
        seed,
        report,
        events,
        leakage: Some(leakage),
        wall_nanos: t0.elapsed().as_nanos() as u64,
    })
}

/// One executed cell: the run report plus event telemetry and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Position in the campaign's cell enumeration.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// The seed the cell actually ran with.
    pub seed: u64,
    /// The simulator's measurements. For a leakage cell, variant A's run
    /// (both variants are structurally identical; A is the reference).
    pub report: RunReport,
    /// Per-kind paging-event tallies drained from the kernel event log.
    /// For a leakage cell, variant A's tallies.
    pub events: EventCounts,
    /// What the untrusted-OS observer learned — present on leakage cells
    /// only, `null` in the JSON otherwise.
    pub leakage: Option<LeakageReport>,
    /// Host wall-clock nanoseconds the cell took (non-deterministic;
    /// excluded from canonical JSON).
    pub wall_nanos: u64,
}

impl CellReport {
    fn write_json(&self, out: &mut String, canonical: bool) {
        out.push_str(&format!("{{\"index\":{},\"label\":", self.index));
        push_json_str(out, &self.label);
        out.push_str(&format!(",\"seed\":{},\"report\":", self.seed));
        self.report.write_json(out);
        out.push_str(",\"events\":");
        self.events.write_json(out);
        out.push_str(",\"leakage\":");
        match &self.leakage {
            Some(l) => l.write_json(out),
            None => out.push_str("null"),
        }
        if !canonical {
            out.push_str(&format!(",\"wall_nanos\":{}", self.wall_nanos));
        }
        out.push('}');
    }
}

/// The outcome of a campaign run: every cell's report, in cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// The master seed the campaign ran with.
    pub campaign_seed: u64,
    /// Worker threads used (non-deterministic context; excluded from
    /// canonical JSON).
    pub jobs: usize,
    /// Host wall-clock nanoseconds for the whole campaign
    /// (non-deterministic; excluded from canonical JSON).
    pub wall_nanos: u64,
    /// Per-cell results, in cell-enumeration order.
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// The deterministic JSON representation: identical bytes for serial
    /// and parallel runs of the same campaign. Excludes worker count and
    /// wall-clock timing. This is what the golden-report harness pins.
    pub fn to_canonical_json(&self) -> String {
        self.to_json_inner(true)
    }

    /// The full JSON representation, including the worker count and
    /// per-cell/per-campaign wall-clock timings.
    pub fn to_json(&self) -> String {
        self.to_json_inner(false)
    }

    fn to_json_inner(&self, canonical: bool) -> String {
        let mut out = String::new();
        out.push_str("{\"campaign\":");
        push_json_str(&mut out, &self.name);
        out.push_str(&format!(",\"campaign_seed\":{}", self.campaign_seed));
        if !canonical {
            out.push_str(&format!(
                ",\"jobs\":{},\"wall_nanos\":{}",
                self.jobs, self.wall_nanos
            ));
        }
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cell.write_json(&mut out, canonical);
        }
        out.push_str("]}");
        out
    }

    /// Looks a cell up by label.
    pub fn cell(&self, label: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.label == label)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign {} (seed {}, {} cells, {} workers, {:.2}s)",
            self.name,
            self.campaign_seed,
            self.cells.len(),
            self.jobs,
            self.wall_nanos as f64 / 1e9
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "  [{:>3}] {:<32} {:>16} cycles  {:>8} faults  {:>6} preloads  {:>5} events",
                c.index,
                c.label,
                c.report.total_cycles.to_string(),
                c.report.faults,
                c.report.preloads_started,
                c.events.total(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_workloads::Scale;

    fn tiny_cfg() -> SimConfig {
        SimConfig::at_scale(Scale::new(64))
    }

    fn tiny_campaign() -> Campaign {
        Campaign::grid(
            "tiny",
            11,
            &[Benchmark::Microbenchmark, Benchmark::Leela],
            &[Scheme::Baseline, Scheme::Dfp],
            tiny_cfg(),
        )
    }

    #[test]
    fn grid_enumerates_benchmark_major() {
        let c = tiny_campaign();
        let labels: Vec<&str> = c.cells().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "microbenchmark/baseline",
                "microbenchmark/DFP",
                "leela/baseline",
                "leela/DFP"
            ]
        );
    }

    #[test]
    fn cell_seeds_are_stable_and_positional() {
        let a = derive_cell_seed(42, 0);
        let b = derive_cell_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_cell_seed(42, 0));
        let c = tiny_campaign();
        assert_eq!(c.cell_seed(3), derive_cell_seed(11, 3));
        let shared = tiny_campaign().with_seed_mode(SeedMode::Shared);
        assert_eq!(shared.cell_seed(0), 11);
        assert_eq!(shared.cell_seed(3), 11);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let c = tiny_campaign();
        let serial = c.run_serial().unwrap();
        let parallel = c.run_with_jobs(4).unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(parallel.cells.iter()) {
            assert_eq!(s.report, p.report, "cell {} diverged", s.label);
            assert_eq!(s.events, p.events, "cell {} telemetry diverged", s.label);
            assert_eq!(s.seed, p.seed);
        }
        assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let mut c = Campaign::new("one", 3);
        c.push(Cell::new(
            Benchmark::Microbenchmark,
            Scheme::Baseline,
            tiny_cfg(),
        ));
        let r = c.run_with_jobs(8).unwrap();
        assert_eq!(r.cells.len(), 1);
        assert!(r.cells[0].report.accesses > 0);
    }

    #[test]
    fn canonical_json_hides_timing_but_full_json_has_it() {
        let mut c = Campaign::new("t", 1);
        c.push(Cell::new(
            Benchmark::Microbenchmark,
            Scheme::Baseline,
            tiny_cfg(),
        ));
        let r = c.run_serial().unwrap();
        let canon = r.to_canonical_json();
        let full = r.to_json();
        assert!(!canon.contains("wall_nanos"));
        assert!(!canon.contains("\"jobs\""));
        assert!(full.contains("wall_nanos"));
        assert!(full.contains("\"jobs\":1"));
    }

    #[test]
    fn shared_seed_mode_reuses_the_workload_across_schemes() {
        let c = Campaign::grid(
            "shared",
            21,
            &[Benchmark::Microbenchmark],
            &[Scheme::Baseline, Scheme::Dfp],
            tiny_cfg(),
        )
        .with_seed_mode(SeedMode::Shared);
        let r = c.run_serial().unwrap();
        // Same workload stream under both schemes: identical access counts.
        assert_eq!(r.cells[0].report.accesses, r.cells[1].report.accesses);
    }

    #[test]
    fn chaos_grid_adds_a_schedule_axis() {
        let c = Campaign::chaos_grid(
            "chaos",
            13,
            &[Benchmark::Microbenchmark],
            &[Scheme::Dfp],
            tiny_cfg(),
            &[
                ("none", ChaosSchedule::none()),
                ("light", ChaosSchedule::light(1)),
            ],
        );
        let labels: Vec<&str> = c.cells().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "microbenchmark/DFP/chaos=none",
                "microbenchmark/DFP/chaos=light"
            ]
        );
        assert!(c.cells()[0].cfg.chaos.is_none());
        assert!(!c.cells()[1].cfg.chaos.is_none());
        let r = c.with_seed_mode(SeedMode::Shared).run_serial().unwrap();
        // Same workload either way; chaos only perturbs the kernel.
        assert_eq!(r.cells[0].report.accesses, r.cells[1].report.accesses);
    }

    #[test]
    fn tenant_grid_adds_a_policy_axis() {
        let cfg = tiny_cfg();
        let c = Campaign::tenant_grid(
            "tenancy",
            17,
            &[Benchmark::Microbenchmark],
            &[Scheme::Dfp],
            cfg,
            &[
                ("none", TenantPolicy::none()),
                ("fair2", TenantPolicy::fair(2, cfg.epc_pages)),
            ],
        );
        let labels: Vec<&str> = c.cells().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "microbenchmark/DFP/tenant=none",
                "microbenchmark/DFP/tenant=fair2"
            ]
        );
        assert!(c.cells()[0].cfg.tenant.is_none());
        assert!(!c.cells()[1].cfg.tenant.is_none());
        let r = c.with_seed_mode(SeedMode::Shared).run_serial().unwrap();
        // Same workload either way; the policy only perturbs the kernel.
        assert_eq!(r.cells[0].report.accesses, r.cells[1].report.accesses);
        // A single-enclave cell under fair(2) stays within its share, so
        // the tenant fields serialize (zero wait, zero shed) either way.
        assert!(r.to_canonical_json().contains("\"channel_wait_cycles\":"));
    }

    #[test]
    fn replay_grid_reproduces_generator_grid() {
        use sgx_workloads::{InputSet, RecordedTrace};
        let cfg = tiny_cfg();
        let seed = 29;
        let benches = [Benchmark::Microbenchmark, Benchmark::Leela];
        let schemes = [Scheme::Baseline, Scheme::Dfp];
        let direct = Campaign::grid("replay_eq", seed, &benches, &schemes, cfg)
            .with_seed_mode(SeedMode::Shared)
            .run_serial()
            .unwrap();
        // Record each bench's full ref stream at the shared seed, then
        // drive the identical grid from the recordings.
        let replays: Vec<TraceReplay> = benches
            .iter()
            .map(|&b| {
                let trace =
                    RecordedTrace::record(b.build(InputSet::Ref, cfg.scale, seed), usize::MAX);
                TraceReplay::of_benchmark(b, trace)
            })
            .collect();
        let replayed = Campaign::replay_grid("replay_eq", seed, &replays, &schemes, cfg)
            .with_seed_mode(SeedMode::Shared)
            .run_with_jobs(4)
            .unwrap();
        assert_eq!(direct.to_canonical_json(), replayed.to_canonical_json());
    }

    #[test]
    fn traced_events_agree_with_report_counters() {
        let mut c = Campaign::new("ev", 5);
        c.push(Cell::new(
            Benchmark::Microbenchmark,
            Scheme::Dfp,
            tiny_cfg(),
        ));
        let r = c.run_serial().unwrap();
        let cell = &r.cells[0];
        assert_eq!(cell.events.faults, cell.report.faults);
        assert_eq!(cell.events.preload_starts, cell.report.preloads_started);
        assert!(cell.events.total() > 0);
    }

    #[test]
    fn failing_cell_error_names_the_lowest_indexed_cell() {
        // An EPC of zero pages fails kernel construction, so every cell
        // errors; serial and parallel must both blame cell 0.
        let bad = tiny_cfg().with_epc_pages(0);
        let c = Campaign::grid(
            "bad",
            7,
            &[Benchmark::Microbenchmark, Benchmark::Leela],
            &[Scheme::Baseline, Scheme::Dfp],
            bad,
        );
        let serial = c.run_serial().unwrap_err();
        let parallel = c.run_with_jobs(4).unwrap_err();
        assert_eq!(serial, parallel);
        assert_eq!(serial.index, 0);
        assert_eq!(serial.label, "microbenchmark/baseline");
        let msg = serial.to_string();
        assert!(msg.contains("microbenchmark/baseline"), "{msg}");
        use std::error::Error;
        assert!(serial.source().is_some());
    }

    #[test]
    fn leakage_grid_enumerates_pair_major_with_oram_rows() {
        let c = Campaign::leakage_grid(
            "leak",
            9,
            &[SecretPair::BranchHalves, SecretPair::DfpEcho],
            &[Scheme::Baseline, Scheme::Dfp],
            tiny_cfg(),
            64,
        );
        let labels: Vec<&str> = c.cells().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "branch-halves/baseline",
                "branch-halves/DFP",
                "branch-halves/oram",
                "dfp-echo/baseline",
                "dfp-echo/DFP",
                "dfp-echo/oram",
            ]
        );
        // Scheme-vs-baseline comparisons need the same workload streams.
        assert_eq!(c.cell_seed(0), c.cell_seed(5));
    }

    #[test]
    fn leakage_cells_carry_reports_and_oram_is_indistinguishable() {
        let c = Campaign::leakage_grid(
            "leak",
            9,
            &[SecretPair::LookupOrder],
            &[Scheme::Baseline],
            tiny_cfg(),
            64,
        );
        let r = c.run_serial().unwrap();
        let base = r.cells[0].leakage.as_ref().expect("leakage cell");
        assert!(!base.oram);
        assert!(
            base.distinguishability() > 0.5,
            "order pair leaks at baseline: {}",
            base.distinguishability()
        );
        let oram = r.cells[1].leakage.as_ref().expect("oram row");
        assert!(oram.oram);
        assert_eq!(
            oram.distinguishability(),
            0.0,
            "padded reference row is secret-independent"
        );
        // Schema: leakage serializes on every cell — null for plain runs.
        let json = r.to_canonical_json();
        assert!(json.contains("\"leakage\":{\"pair\":\"lookup-order\""));
        let plain = tiny_campaign().run_serial().unwrap();
        assert!(plain.to_canonical_json().contains("\"leakage\":null"));
    }

    #[test]
    fn run_indexed_serial_and_parallel_agree() {
        let serial = run_indexed(9, 1, |i| i * i);
        let parallel = run_indexed(9, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..9).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, 3, |i| i).is_empty());
    }

    #[test]
    fn effective_jobs_clamps_to_one() {
        assert_eq!(effective_jobs(Some(0)), 1);
        assert_eq!(effective_jobs(Some(5)), 5);
        assert!(effective_jobs(None) >= 1);
    }
}
