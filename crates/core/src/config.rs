//! Simulation configuration.

use sgx_dfp::{AbortPolicy, PredictorKind, StreamConfig};
use sgx_epc::{CostModel, EpcSizing};
use sgx_kernel::{ChaosSchedule, TenantPolicy};
use sgx_sim::Cycles;
use sgx_sip::{NotifyPlacement, SipConfig};
use sgx_workloads::Scale;

use crate::UserPagingConfig;

/// Everything a run needs besides the workload itself.
///
/// Construct with [`SimConfig::at_scale`] (paper parameters, scaled) and
/// refine with the `with_*` builders — the parameter sweeps of Figs. 6, 7
/// and 9 are expressed that way.
///
/// # Examples
///
/// ```
/// use sgx_preload_core::SimConfig;
/// use sgx_workloads::Scale;
///
/// let cfg = SimConfig::at_scale(Scale::FULL);
/// assert_eq!(cfg.epc_pages, 24_576); // the paper's usable 96 MiB
/// assert_eq!(cfg.stream.load_length, 4); // Fig. 7's chosen LOADLENGTH
/// assert_eq!(cfg.stream.list_len, 30); // Fig. 6's chosen list length
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Workload/EPC scale.
    pub scale: Scale,
    /// EPC capacity in pages.
    pub epc_pages: u64,
    /// Cycle costs for every paging event.
    pub costs: CostModel,
    /// DFP's Algorithm 1 parameters.
    pub stream: StreamConfig,
    /// Which fault-driven predictor DFP-style schemes run. The default
    /// ([`PredictorKind::MultiStream`]) is the paper's Algorithm 1, so
    /// existing configurations are bit-identical unless overridden.
    pub predictor: PredictorKind,
    /// EDMM dynamic-sizing policy, consulted only by `edmm*` schemes. The
    /// default ([`EpcSizing::physical`]) lets enclaves grow until physical
    /// EPC is the limit.
    pub epc_sizing: EpcSizing,
    /// The DFP-stop safety valve (used by the `DfpStop`/`Hybrid` schemes).
    pub abort: AbortPolicy,
    /// SIP instrumentation selection.
    pub sip: SipConfig,
    /// Where SIP notifications are placed relative to the access.
    pub placement: NotifyPlacement,
    /// The §6 user-level paging comparator's cost model.
    pub user_paging: UserPagingConfig,
    /// Master seed for workload generation.
    pub seed: u64,
    /// Deterministic fault-injection schedule. The default
    /// ([`ChaosSchedule::none`]) never draws and leaves runs bit-identical
    /// to a kernel with no injector installed.
    pub chaos: ChaosSchedule,
    /// Multi-tenant EPC scheduling policy. The default
    /// ([`TenantPolicy::none`]) keeps the shared-everything driver
    /// behaviour, bit-identically; per-enclave telemetry is collected
    /// either way.
    pub tenant: TenantPolicy,
    /// Gauge-sampling interval in simulated cycles for subscribed trace
    /// sinks (`0`, the default, disables sampling entirely).
    pub series_interval: u64,
}

impl SimConfig {
    /// The paper's configuration at the given scale: 96 MiB usable EPC,
    /// published instruction costs, `stream_list` length 30, `LOADLENGTH`
    /// 4, a 5% SIP threshold, and an abort valve whose slack/interval are
    /// scaled with the run size (the paper's absolute 200,000-page slack
    /// was tuned on full SPEC reference runs).
    pub fn at_scale(scale: Scale) -> Self {
        let div = scale.divisor();
        let slack = (8_000 / div).max(100);
        let interval = (10_000_000 / div).max(100_000);
        SimConfig {
            scale,
            epc_pages: scale.epc_pages(),
            costs: CostModel::paper_defaults(),
            stream: StreamConfig::paper_defaults(),
            predictor: PredictorKind::MultiStream,
            epc_sizing: EpcSizing::physical(),
            abort: AbortPolicy::paper_defaults()
                .with_slack(slack)
                .with_check_interval(Cycles::new(interval)),
            sip: SipConfig::paper_defaults(),
            placement: NotifyPlacement::Conservative,
            user_paging: UserPagingConfig::defaults_for(scale.epc_pages()),
            seed: 42,
            chaos: ChaosSchedule::none(),
            tenant: TenantPolicy::none(),
            series_interval: 0,
        }
    }

    /// Overrides the EPC size (the §6 "larger EPC" what-if).
    pub fn with_epc_pages(mut self, pages: u64) -> Self {
        self.epc_pages = pages;
        self.user_paging = UserPagingConfig::defaults_for(pages);
        self
    }

    /// Overrides the user-level paging comparator's cost model.
    pub fn with_user_paging(mut self, user: UserPagingConfig) -> Self {
        self.user_paging = user;
        self
    }

    /// Overrides the cost model.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides DFP's stream parameters (Figs. 6–7 sweeps).
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the abort valve.
    pub fn with_abort(mut self, abort: AbortPolicy) -> Self {
        self.abort = abort;
        self
    }

    /// Selects the fault-driven predictor for DFP-style schemes (the
    /// predictor-zoo ablation axis).
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Overrides the EDMM dynamic-sizing policy used by `edmm*` schemes
    /// (e.g. a per-enclave committed-page ceiling).
    pub fn with_epc_sizing(mut self, sizing: EpcSizing) -> Self {
        self.epc_sizing = sizing;
        self
    }

    /// Overrides SIP selection (Fig. 9 sweep).
    pub fn with_sip(mut self, sip: SipConfig) -> Self {
        self.sip = sip;
        self
    }

    /// Overrides the SIP notification placement (the early-notify
    /// extension; the paper's prototype is conservative).
    pub fn with_placement(mut self, placement: NotifyPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a deterministic fault-injection schedule (the chaos
    /// layer). The injector draws from its own seeded streams, so the
    /// workload generation under [`SimConfig::seed`] is unperturbed.
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = chaos;
        self
    }

    /// Installs a multi-tenant EPC scheduling policy: per-enclave quotas,
    /// weighted preload arbitration, valve scoping and admission control.
    /// Shares map to enclaves in registration order.
    pub fn with_tenant_policy(mut self, tenant: TenantPolicy) -> Self {
        self.tenant = tenant;
        self
    }

    /// Samples kernel gauges every `every` simulated cycles into subscribed
    /// trace sinks (see `TimeSeriesSink`). `0` disables sampling; with no
    /// sinks attached the interval has no observable effect.
    pub fn with_series_interval(mut self, every: u64) -> Self {
        self.series_interval = every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let c = SimConfig::at_scale(Scale::FULL);
        assert_eq!(c.epc_pages, 24_576);
        assert_eq!(c.costs.eldu, Cycles::new(44_000));
        assert!((c.sip.threshold - 0.05).abs() < 1e-12);
        assert_eq!(c.abort.slack, 8_000);
    }

    #[test]
    fn dev_scale_shrinks_valve_and_epc() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert_eq!(c.epc_pages, 1_536);
        assert_eq!(c.abort.slack, 500);
        assert!(c.abort.check_interval < Cycles::new(10_000_000));
    }

    #[test]
    fn builders_override() {
        let c = SimConfig::at_scale(Scale::FULL)
            .with_epc_pages(99)
            .with_seed(7);
        assert_eq!(c.epc_pages, 99);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scale, Scale::FULL);
    }

    #[test]
    fn chaos_defaults_off_and_overrides() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert!(c.chaos.is_none());
        let c = c.with_chaos(ChaosSchedule::light(9));
        assert!(!c.chaos.is_none());
        assert_eq!(c.chaos.seed, 9);
        assert_eq!(c.seed, 42, "workload seed untouched by chaos");
    }

    #[test]
    fn series_interval_defaults_off_and_overrides() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert_eq!(c.series_interval, 0);
        let c = c.with_series_interval(50_000);
        assert_eq!(c.series_interval, 50_000);
    }

    #[test]
    fn predictor_defaults_to_multi_stream_and_overrides() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert_eq!(c.predictor, PredictorKind::MultiStream);
        let c = c.with_predictor(PredictorKind::Leap);
        assert_eq!(c.predictor, PredictorKind::Leap);
        assert_eq!(c.seed, 42, "workload seed untouched by predictor choice");
    }

    #[test]
    fn epc_sizing_defaults_to_physical_and_overrides() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert_eq!(c.epc_sizing, EpcSizing::physical());
        let c = c.with_epc_sizing(EpcSizing::physical().with_ceiling(512));
        assert_eq!(c.epc_sizing.ceiling, Some(512));
    }

    #[test]
    fn tenant_policy_defaults_off_and_overrides() {
        let c = SimConfig::at_scale(Scale::DEV);
        assert!(c.tenant.is_none());
        let c = c.with_tenant_policy(TenantPolicy::fair(2, c.epc_pages));
        assert!(!c.tenant.is_none());
        assert_eq!(c.tenant.quota(0).soft_pages, 768);
        assert_eq!(c.seed, 42, "workload seed untouched by tenancy");
    }
}
