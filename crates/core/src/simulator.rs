//! The simulator: applications executing inside enclaves over the
//! kernel/EPC substrate, under any [`Scheme`].

use std::collections::{HashSet, VecDeque};

use sgx_dfp::{NoPredictor, Predictor, ProcessId};
use sgx_kernel::{CycleAttribution, Kernel, KernelConfig, KernelError, TraceSink};
use sgx_sim::Cycles;
use sgx_sip::{profile_stream, InstrumentationPlan};
use sgx_workloads::{AccessIter, Benchmark, InputSet};

use crate::{RunReport, Scheme, SimConfig, SimError};

/// A spec-level validation error, reported by [`AppSpecBuilder::build`]
/// or by [`SimRun::run`]'s topology pass — always *before* any kernel is
/// built.
///
/// [`SimRun::run`]: crate::SimRun::run
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// A non-thread app declared a zero-page ELRANGE.
    EmptyElrange,
    /// An [`AppSpec::thread_of`] referenced its own entry or a later one;
    /// `app` is the offending index among the run's enclave entries.
    ThreadOrder {
        /// Index of the offending app among the enclave entries.
        app: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyElrange => f.write_str("an enclave needs a non-empty ELRANGE"),
            SpecError::ThreadOrder { app } => {
                write!(f, "app {app}: thread_of must reference an earlier app")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// One application to simulate: its ELRANGE, access stream, and (for
/// SIP/Hybrid) instrumentation plan. Assembled by the [`AppSpecBuilder`]
/// that [`AppSpec::new`] returns.
pub struct AppSpec {
    /// Report label.
    pub label: String,
    /// Enclave virtual size in pages.
    pub elrange_pages: u64,
    /// The access stream (built from a workload generator).
    pub workload: AccessIter,
    /// Instrumented sites; empty unless [`AppSpecBuilder::plan`] attached
    /// one.
    pub plan: InstrumentationPlan,
    /// When `Some(i)`, this app is an additional *thread* of the `i`-th
    /// app's enclave: shared ELRANGE and presence bitmap, separate
    /// per-thread fault history (paper §3.1). `elrange_pages` is ignored.
    pub thread_of: Option<usize>,
}

impl AppSpec {
    /// Starts building an app without instrumentation. Finish with
    /// [`AppSpecBuilder::build`], which validates the spec so malformed
    /// topologies fail before a kernel exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use sgx_preload_core::AppSpec;
    /// use sgx_workloads::{Benchmark, InputSet, Scale};
    ///
    /// let stream = Benchmark::Microbenchmark.build(InputSet::Ref, Scale::DEV, 1);
    /// let app = AppSpec::new("micro", 64, stream).build()?;
    /// assert_eq!(app.label, "micro");
    /// # Ok::<(), sgx_preload_core::SpecError>(())
    /// ```
    #[allow(clippy::new_ret_no_self)] // `new` is the builder's entry point
    pub fn new(
        label: impl Into<String>,
        elrange_pages: u64,
        workload: AccessIter,
    ) -> AppSpecBuilder {
        AppSpecBuilder {
            label: label.into(),
            elrange_pages,
            workload,
            plan: InstrumentationPlan::none(),
            thread_of: None,
        }
    }
}

/// Builder for [`AppSpec`] (mirrors the [`SimRun`] naming:
/// `AppSpec::new(..).thread_of(..).build()?`).
///
/// [`SimRun`]: crate::SimRun
pub struct AppSpecBuilder {
    label: String,
    elrange_pages: u64,
    workload: AccessIter,
    plan: InstrumentationPlan,
    thread_of: Option<usize>,
}

impl AppSpecBuilder {
    /// Marks this app as a thread of the `index`-th app's enclave; `index`
    /// counts the run's enclave entries in insertion order and must
    /// reference an earlier entry (cross-checked when the run assembles
    /// its topology, still before any kernel is built).
    pub fn thread_of(mut self, index: usize) -> Self {
        self.thread_of = Some(index);
        self
    }

    /// Attaches a SIP instrumentation plan.
    pub fn plan(mut self, plan: InstrumentationPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Validates the spec and builds it.
    ///
    /// # Errors
    ///
    /// [`SpecError::EmptyElrange`] when a non-thread app declared a
    /// zero-page ELRANGE.
    pub fn build(self) -> Result<AppSpec, SpecError> {
        if self.thread_of.is_none() && self.elrange_pages == 0 {
            return Err(SpecError::EmptyElrange);
        }
        Ok(AppSpec {
            label: self.label,
            elrange_pages: self.elrange_pages,
            workload: self.workload,
            plan: self.plan,
            thread_of: self.thread_of,
        })
    }
}

/// Pulls the next access, maintaining the early-notify lookahead: while
/// refilling the window, hoisted notifications for instrumented accesses
/// are issued (one bitmap check + one notify each, then an asynchronous
/// kernel prefetch). With `distance == 0` this degenerates to a plain pull
/// and the conservative inline path in the main loop applies.
fn next_access(
    st: &mut AppState,
    kernel: &mut Kernel,
    cfg: &SimConfig,
    distance: usize,
) -> Option<sgx_workloads::Access> {
    if distance == 0 {
        return st.workload.next();
    }
    while st.lookahead.len() <= distance {
        let Some(a) = st.workload.next() else { break };
        if st.plan.is_instrumented(a.site) {
            // The hoisted notification runs once (it sits outside the hot
            // loop the access itself re-executes in).
            st.now += cfg.costs.bitmap_check;
            st.sip_checks += 1;
            if !kernel.sip_present(st.now, st.pid, a.page) {
                st.now += cfg.costs.notify;
                st.sip_notifies += 1;
                kernel.sip_prefetch(st.now, st.pid, a.page);
            }
        }
        st.lookahead.push_back(a);
    }
    st.lookahead.pop_front()
}

fn make_predictor(cfg: &SimConfig, scheme: Scheme) -> Box<dyn Predictor> {
    if scheme.uses_dfp() {
        cfg.predictor.build(cfg.stream)
    } else {
        Box::new(NoPredictor)
    }
}

/// Builds the kernel a [`SimRun`](crate::SimRun) would drive for `cfg`
/// under `scheme`:
/// EPC sizing, per-operation costs, the scheme's predictor, the abort
/// valve when the scheme uses one, plus any configured chaos schedule,
/// tenant policy, and gauge-sampling interval. Exported so higher layers
/// (the fleet simulator) can drive the same kernel directly.
///
/// # Errors
///
/// [`KernelError`] when the configuration is unbuildable (e.g. zero EPC
/// pages).
pub fn build_kernel(cfg: &SimConfig, scheme: Scheme) -> Result<Kernel, KernelError> {
    let mut kcfg = KernelConfig::new(cfg.epc_pages).with_costs(cfg.costs);
    if scheme.uses_valve() {
        kcfg = kcfg.with_abort_policy(cfg.abort);
    }
    if scheme.uses_edmm() {
        kcfg = kcfg.with_edmm(cfg.epc_sizing);
    }
    if !cfg.chaos.is_none() {
        kcfg.chaos = Some(cfg.chaos);
    }
    if !cfg.tenant.is_none() {
        kcfg.tenant = Some(cfg.tenant);
    }
    let mut kernel = Kernel::try_new(kcfg, make_predictor(cfg, scheme))?;
    kernel.set_sample_interval(cfg.series_interval);
    Ok(kernel)
}

struct AppState {
    pid: ProcessId,
    label: String,
    workload: AccessIter,
    plan: InstrumentationPlan,
    lookahead: VecDeque<sgx_workloads::Access>,
    now: Cycles,
    done: bool,
    accesses: u64,
    executions: u64,
    epc_hits: u64,
    faults: u64,
    faults_waited: u64,
    faults_raced: u64,
    sip_checks: u64,
    sip_notifies: u64,
}

/// Runs one or more applications concurrently inside enclaves sharing one
/// EPC and load channel (the §5.6 multi-enclave scenario). The engine
/// behind [`SimRun`]; returns one report per app, in input order.
pub(crate) fn run_kernel_apps(
    apps: Vec<AppSpec>,
    cfg: &SimConfig,
    scheme: Scheme,
    sinks: Vec<Box<dyn TraceSink>>,
) -> Result<Vec<RunReport>, SimError> {
    assert!(!apps.is_empty(), "caller gathers at least one app");
    // Topology validation happens before the kernel exists: a bad
    // thread_of reference never half-registers a run.
    for (i, app) in apps.iter().enumerate() {
        if matches!(app.thread_of, Some(owner) if owner >= i) {
            return Err(SimError::Spec(crate::SpecError::ThreadOrder { app: i }));
        }
    }
    let mut kernel = build_kernel(cfg, scheme)?;
    for sink in sinks {
        kernel.subscribe(sink);
    }
    let mut states: Vec<AppState> = Vec::with_capacity(apps.len());
    for (i, app) in apps.into_iter().enumerate() {
        let pid = ProcessId(i as u32);
        match app.thread_of {
            None => kernel.register_enclave(pid, app.elrange_pages)?,
            Some(owner) => kernel.register_thread(ProcessId(owner as u32), pid)?,
        }
        states.push(AppState {
            pid,
            label: app.label,
            workload: app.workload,
            plan: app.plan,
            lookahead: VecDeque::new(),
            now: Cycles::ZERO,
            done: false,
            accesses: 0,
            executions: 0,
            epc_hits: 0,
            faults: 0,
            faults_waited: 0,
            faults_raced: 0,
            sip_checks: 0,
            sip_notifies: 0,
        });
    }

    let distance = cfg.placement.distance();

    // Round-robin by simulated time: always advance the app whose clock is
    // furthest behind, so kernel calls stay (near) monotonic — the same
    // interleaving a shared physical machine would produce.
    loop {
        let next = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by_key(|(_, s)| s.now)
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let st = &mut states[i];
        let Some(access) = next_access(st, &mut kernel, cfg, distance) else {
            st.done = true;
            continue;
        };
        st.now += access.compute;
        st.accesses += 1;
        st.executions += access.repeats as u64;

        if distance == 0 && st.plan.is_instrumented(access.site) {
            // Paper Fig. 5: every execution re-runs BIT_MAP_CHECK; the
            // page_loadin_function fires only when the bit is clear.
            st.now += cfg.costs.bitmap_check * access.repeats as u64;
            st.sip_checks += access.repeats as u64;
            if !kernel.sip_present(st.now, st.pid, access.page) {
                st.now += cfg.costs.notify;
                st.now = kernel.sip_load(st.now, st.pid, access.page);
                st.sip_notifies += 1;
            }
            match kernel.app_access(st.now, st.pid, access.page) {
                Some(_) => st.epc_hits += 1,
                None => {
                    // Chaos pressure can evict the just-SIP-loaded page
                    // before the touch lands; fall back to the demand
                    // path instead of crediting a phantom hit.
                    let r = kernel.page_fault(st.now, st.pid, access.page);
                    st.faults += 1;
                    match r.kind {
                        sgx_kernel::FaultServicing::WaitedForInflight => st.faults_waited += 1,
                        sgx_kernel::FaultServicing::FoundResident => st.faults_raced += 1,
                        sgx_kernel::FaultServicing::DemandLoaded => {}
                    }
                    st.now = r.resume_at;
                }
            }
        } else {
            match kernel.app_access(st.now, st.pid, access.page) {
                Some(_) => st.epc_hits += 1,
                None => {
                    let r = kernel.page_fault(st.now, st.pid, access.page);
                    st.faults += 1;
                    match r.kind {
                        sgx_kernel::FaultServicing::WaitedForInflight => st.faults_waited += 1,
                        sgx_kernel::FaultServicing::FoundResident => st.faults_raced += 1,
                        sgx_kernel::FaultServicing::DemandLoaded => {}
                    }
                    st.now = r.resume_at;
                }
            }
        }
    }

    let end = states
        .iter()
        .map(|s| s.now)
        .max()
        .expect("at least one app");
    // Closes the event stream: terminal RunEnd marker plus a final gauge
    // sample. Deliberately does not advance the channel — trailing
    // in-flight work stays unaccounted, exactly as before spans existed.
    kernel.finish(end);
    let ks = kernel.stats().clone();
    let epc = kernel.epc();
    let (touched, wasted) = (epc.preloads_touched(), epc.preloads_evicted_untouched());
    let util = kernel.channel_utilization(end);
    let fs = ks.fault_service.summary();
    let pl = ks.preload_lead.summary();
    // Per-app fairness telemetry: threads share their enclave's tenant.
    let tenancy: Vec<(Cycles, u64, u64, u64)> = (0..states.len())
        .map(|i| match kernel.tenant_index(ProcessId(i as u32)) {
            Some(t) => {
                let ts = kernel.tenant_stats(t);
                let rs = ts.residency.summary();
                (
                    ts.channel_wait,
                    ts.preloads_shed,
                    rs.p50.raw(),
                    rs.p99.raw(),
                )
            }
            None => (Cycles::ZERO, 0, 0, 0),
        })
        .collect();

    Ok(states
        .into_iter()
        .zip(tenancy)
        .map(|(s, (wait, shed, res_p50, res_p99))| RunReport {
            label: s.label,
            scheme,
            total_cycles: s.now,
            accesses: s.accesses,
            executions: s.executions,
            epc_hits: s.epc_hits,
            faults: s.faults,
            faults_waited_inflight: s.faults_waited,
            faults_found_resident: s.faults_raced,
            sip_checks: s.sip_checks,
            sip_notifies: s.sip_notifies,
            instrumentation_points: s.plan.len(),
            preloads_started: ks.preloads_started,
            preloads_touched: touched,
            preloads_wasted: wasted,
            preloads_aborted: ks.preloads_aborted,
            background_evictions: ks.background_evictions,
            foreground_evictions: ks.foreground_evictions,
            dfp_stopped_at: ks.dfp_stopped_at,
            channel_utilization: util,
            fault_service_mean: fs.mean,
            fault_service_p50: fs.p50,
            fault_service_p90: fs.p90,
            fault_service_p99: fs.p99,
            preload_lead_mean: pl.mean,
            preload_lead_p50: pl.p50,
            preload_lead_p90: pl.p90,
            preload_lead_p99: pl.p99,
            channel_wait_cycles: wait,
            preloads_shed: shed,
            residency_p50: res_p50,
            residency_p99: res_p99,
            attribution: kernel.attribution(s.now),
        })
        .collect())
}

/// Builds the SIP instrumentation plan for a benchmark by profiling its
/// *train* input (the paper's PGO pipeline, §5.2). Returns an empty plan
/// when the scheme does not instrument or the paper's prototype could not
/// handle the program (Fortran, omnetpp).
pub fn build_plan(bench: Benchmark, cfg: &SimConfig, scheme: Scheme) -> InstrumentationPlan {
    if !scheme.uses_sip() || !bench.sip_supported() {
        return InstrumentationPlan::none();
    }
    // The paper's compiler always cedes Class-2-dominant sites to DFP
    // (§4.4) — DFP is an OS-side property the compiled binary can rely on,
    // whether or not this particular run arms it.
    let sip = cfg.sip;
    let profile = profile_stream(
        bench.build(InputSet::Train, cfg.scale, cfg.seed),
        cfg.epc_pages as usize,
    );
    InstrumentationPlan::from_profile(&profile, sip)
}

/// The outside-the-enclave model behind [`SimRun::outside`]: unlimited
/// RAM, first-touch faults at the regular ≈2,000-cycle cost. This is the
/// "same program without SGX" side of the paper's 46× motivation
/// measurement (§1).
pub(crate) fn run_outside_model(
    label: impl Into<String>,
    workload: AccessIter,
    cfg: &SimConfig,
) -> RunReport {
    let mut resident: HashSet<u64> = HashSet::new();
    let mut now = Cycles::ZERO;
    let mut accesses = 0u64;
    let mut executions = 0u64;
    let mut faults = 0u64;
    for a in workload {
        now += a.compute;
        accesses += 1;
        executions += a.repeats as u64;
        if resident.insert(a.page.raw()) {
            faults += 1;
            now += cfg.costs.non_epc_fault;
        }
    }
    RunReport {
        label: label.into(),
        scheme: Scheme::Baseline,
        total_cycles: now,
        accesses,
        executions,
        epc_hits: accesses - faults,
        faults,
        faults_waited_inflight: 0,
        faults_found_resident: 0,
        sip_checks: 0,
        sip_notifies: 0,
        instrumentation_points: 0,
        preloads_started: 0,
        preloads_touched: 0,
        preloads_wasted: 0,
        preloads_aborted: 0,
        background_evictions: 0,
        foreground_evictions: 0,
        dfp_stopped_at: None,
        channel_utilization: 0.0,
        fault_service_mean: Cycles::ZERO,
        fault_service_p50: Cycles::ZERO,
        fault_service_p90: Cycles::ZERO,
        fault_service_p99: Cycles::ZERO,
        preload_lead_mean: Cycles::ZERO,
        preload_lead_p50: Cycles::ZERO,
        preload_lead_p90: Cycles::ZERO,
        preload_lead_p99: Cycles::ZERO,
        channel_wait_cycles: Cycles::ZERO,
        preloads_shed: 0,
        residency_p50: 0,
        residency_p99: 0,
        // Outside the enclave there is no paging machinery: the regular
        // first-touch faults are part of ordinary execution.
        attribution: CycleAttribution {
            app_compute: now.raw(),
            ..CycleAttribution::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRun;
    use sgx_workloads::Scale;

    fn cfg() -> SimConfig {
        SimConfig::at_scale(Scale::DEV)
    }

    fn run(bench: Benchmark, scheme: Scheme) -> RunReport {
        SimRun::new(&cfg())
            .scheme(scheme)
            .bench(bench)
            .run_one()
            .unwrap()
    }

    fn run_outside_of(bench: Benchmark) -> RunReport {
        let c = cfg();
        SimRun::new(&c)
            .outside("micro-outside", bench.build(InputSet::Ref, c.scale, 42))
            .run_one()
            .unwrap()
    }

    #[test]
    fn identical_configs_are_bit_deterministic() {
        let a = run(Benchmark::Deepsjeng, Scheme::Hybrid);
        let b = run(Benchmark::Deepsjeng, Scheme::Hybrid);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.sip_checks, b.sip_checks);
    }

    #[test]
    fn dfp_speeds_up_sequential_microbenchmark() {
        let base = run(Benchmark::Microbenchmark, Scheme::Baseline);
        let dfp = run(Benchmark::Microbenchmark, Scheme::Dfp);
        let gain = dfp.improvement_over(&base);
        assert!(
            gain > 0.05 && gain < 0.35,
            "DFP gain {gain:.3} outside the plausible band"
        );
        assert!(dfp.preload_accuracy() > 0.9, "streams are predictable");
    }

    #[test]
    fn plain_dfp_regresses_on_bursty_roms_and_valve_rescues_it() {
        let base = run(Benchmark::Roms, Scheme::Baseline);
        let dfp = run(Benchmark::Roms, Scheme::Dfp);
        let stopped = run(Benchmark::Roms, Scheme::DfpStop);
        assert!(
            dfp.improvement_over(&base) < -0.02,
            "plain DFP should regress on roms: {:.3}",
            dfp.improvement_over(&base)
        );
        assert!(
            stopped.improvement_over(&base) > dfp.improvement_over(&base),
            "DFP-stop must beat plain DFP on roms"
        );
        assert!(stopped.dfp_stopped_at.is_some(), "valve should fire");
        assert!(
            stopped.improvement_over(&base) > -0.08,
            "DFP-stop overhead must be bounded: {:.3}",
            stopped.improvement_over(&base)
        );
    }

    #[test]
    fn sip_speeds_up_irregular_deepsjeng() {
        let base = run(Benchmark::Deepsjeng, Scheme::Baseline);
        let sip = run(Benchmark::Deepsjeng, Scheme::Sip);
        assert!(sip.instrumentation_points > 0);
        assert!(sip.sip_notifies > 0);
        let gain = sip.improvement_over(&base);
        assert!(
            gain > 0.02,
            "SIP should help deepsjeng, got {gain:.3} with {} points",
            sip.instrumentation_points
        );
        assert!(
            sip.faults * 10 < base.faults * 9,
            "instrumented faults should drop: {} vs {}",
            sip.faults,
            base.faults
        );
    }

    #[test]
    fn sip_is_a_wash_on_mcf() {
        let base = run(Benchmark::Mcf, Scheme::Baseline);
        let sip = run(Benchmark::Mcf, Scheme::Sip);
        assert!(sip.instrumentation_points > 50, "mcf sites instrumented");
        let gain = sip.improvement_over(&base);
        assert!(
            gain.abs() < 0.06,
            "mcf should be a wash under SIP, got {gain:.3}"
        );
    }

    #[test]
    fn sip_noops_on_fortran_benchmarks() {
        let base = run(Benchmark::Bwaves, Scheme::Baseline);
        let sip = run(Benchmark::Bwaves, Scheme::Sip);
        assert_eq!(sip.instrumentation_points, 0);
        assert_eq!(sip.sip_checks, 0);
        assert_eq!(sip.total_cycles, base.total_cycles);
    }

    #[test]
    fn small_working_set_is_insensitive_to_schemes() {
        let base = run(Benchmark::Leela, Scheme::Baseline);
        for scheme in [Scheme::Dfp, Scheme::DfpStop, Scheme::Sip, Scheme::Hybrid] {
            let r = run(Benchmark::Leela, scheme);
            let delta = r.improvement_over(&base).abs();
            // Only the cold-start faults (a small share of a small-WS run)
            // can move; steady state is all EPC hits.
            assert!(
                delta < 0.08,
                "{scheme} moved leela by {delta:.3}; small WS should be near-flat"
            );
        }
    }

    #[test]
    fn hybrid_tracks_the_better_scheme_on_mixed_blood() {
        let base = run(Benchmark::MixedBlood, Scheme::Baseline);
        let dfp = run(Benchmark::MixedBlood, Scheme::DfpStop);
        let sip = run(Benchmark::MixedBlood, Scheme::Sip);
        let hybrid = run(Benchmark::MixedBlood, Scheme::Hybrid);
        let best = dfp.improvement_over(&base).max(sip.improvement_over(&base));
        let h = hybrid.improvement_over(&base);
        assert!(
            h > best - 0.02,
            "hybrid {h:.3} should be at least the best single scheme {best:.3}"
        );
        assert!(h > 0.0, "mixed-blood must benefit overall");
    }

    #[test]
    fn outside_enclave_run_counts_first_touch_faults() {
        let r = run_outside_of(Benchmark::Microbenchmark);
        let fp = Benchmark::Microbenchmark.elrange_pages(Scale::DEV);
        assert_eq!(r.faults, fp, "one fault per distinct page");
        assert_eq!(r.accesses, fp * 3, "three passes");
    }

    #[test]
    fn enclave_motivation_slowdown_is_an_order_of_magnitude() {
        let inside = run(Benchmark::Microbenchmark, Scheme::Baseline);
        let outside = run_outside_of(Benchmark::Microbenchmark);
        let slowdown = inside.total_cycles.raw() as f64 / outside.total_cycles.raw() as f64;
        assert!(
            slowdown > 15.0 && slowdown < 60.0,
            "motivation slowdown {slowdown:.1}× not in the paper's regime (≈46×)"
        );
    }

    #[test]
    fn two_enclaves_contend_for_the_channel() {
        let c = cfg();
        let mk = || {
            AppSpec::new(
                "micro",
                Benchmark::Microbenchmark.elrange_pages(c.scale),
                Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, 1),
            )
            .build()
            .unwrap()
        };
        let solo = SimRun::new(&c).app(mk()).run_one().unwrap();
        let pair = SimRun::new(&c).apps([mk(), mk()]).run().unwrap();
        assert_eq!(pair.len(), 2);
        for r in &pair {
            assert!(
                r.total_cycles.raw() as f64 > solo.total_cycles.raw() as f64 * 1.3,
                "sharing the EPC must slow both apps: {} vs solo {}",
                r.total_cycles,
                solo.total_cycles
            );
        }
    }

    #[test]
    fn early_notify_reduces_blocking_on_compute_heavy_irregular_code() {
        // A compute-heavy irregular workload: with enough work between
        // accesses, a hoisted notification can hide most of the 44k-cycle
        // load the conservative placement must block on.
        use sgx_sip::NotifyPlacement;
        let c = cfg();
        let conservative = run(Benchmark::Deepsjeng, Scheme::Sip);
        let early_cfg = c.with_placement(NotifyPlacement::Early { distance: 24 });
        let early = SimRun::new(&early_cfg)
            .scheme(Scheme::Sip)
            .bench(Benchmark::Deepsjeng)
            .run_one()
            .unwrap();
        // Early placement must never lose catastrophically, and its
        // prefetches must actually run.
        assert!(early.sip_notifies > 0);
        let ratio = early.total_cycles.raw() as f64 / conservative.total_cycles.raw() as f64;
        assert!(
            ratio < 1.05,
            "early notify should be competitive, got {ratio:.3}x of conservative"
        );
    }

    #[test]
    fn early_notify_distance_zero_equals_conservative() {
        use sgx_sip::NotifyPlacement;
        let a = run(Benchmark::Mser, Scheme::Sip);
        let zero_cfg = cfg().with_placement(NotifyPlacement::Early { distance: 0 });
        let b = SimRun::new(&zero_cfg)
            .scheme(Scheme::Sip)
            .bench(Benchmark::Mser)
            .run_one()
            .unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
    }
}
