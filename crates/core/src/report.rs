//! Run reports: the measurements every figure is built from.

use std::fmt;

use sgx_sim::Cycles;

use crate::Scheme;

/// The outcome of one simulated run (one application under one scheme).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human label (benchmark name or custom).
    pub label: String,
    /// The scheme that ran.
    pub scheme: Scheme,
    /// End-to-end simulated time.
    pub total_cycles: Cycles,
    /// Page-touch events executed.
    pub accesses: u64,
    /// Dynamic executions (events weighted by their `repeats`).
    pub executions: u64,
    /// Accesses that hit the EPC directly.
    pub epc_hits: u64,
    /// Enclave page faults this application raised.
    pub faults: u64,
    /// Faults resolved by waiting on an in-flight preload.
    pub faults_waited_inflight: u64,
    /// Faults that found the page already preloaded (race win).
    pub faults_found_resident: u64,
    /// SIP bitmap checks executed.
    pub sip_checks: u64,
    /// SIP notifications sent (absent page at an instrumented site).
    pub sip_notifies: u64,
    /// Instrumentation points active during the run (paper Table 2).
    pub instrumentation_points: usize,
    /// Preloads started on the channel (whole-kernel).
    pub preloads_started: u64,
    /// Preloaded pages later touched (`AccPreloadCounter`).
    pub preloads_touched: u64,
    /// Preloaded pages evicted untouched — confirmed wasted work.
    pub preloads_wasted: u64,
    /// Queued preloads cancelled by the abort path.
    pub preloads_aborted: u64,
    /// Background (reclaimer) evictions.
    pub background_evictions: u64,
    /// Foreground (demand-path) evictions.
    pub foreground_evictions: u64,
    /// When the DFP-stop valve fired, if it did.
    pub dfp_stopped_at: Option<Cycles>,
    /// Load-channel utilization over the run.
    pub channel_utilization: f64,
    /// Mean end-to-end fault service time.
    pub fault_service_mean: Cycles,
}

impl RunReport {
    /// Execution time normalized to a baseline run (the y-axis of
    /// Figs. 7–13): `< 1.0` is faster than baseline.
    ///
    /// # Panics
    ///
    /// Panics if the baseline took zero cycles.
    pub fn normalized_time(&self, baseline: &RunReport) -> f64 {
        assert!(
            baseline.total_cycles > Cycles::ZERO,
            "baseline must have run"
        );
        self.total_cycles.raw() as f64 / baseline.total_cycles.raw() as f64
    }

    /// Performance improvement over a baseline, as a fraction: `0.114`
    /// means 11.4% faster; negative values are regressions.
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        1.0 - self.normalized_time(baseline)
    }

    /// Fault-rate per 1,000 accesses.
    pub fn faults_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.faults as f64 * 1_000.0 / self.accesses as f64
        }
    }

    /// Share of completed preloads that were eventually used.
    pub fn preload_accuracy(&self) -> f64 {
        let denom = self.preloads_touched + self.preloads_wasted;
        if denom == 0 {
            0.0
        } else {
            self.preloads_touched as f64 / denom as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles over {} accesses",
            self.label, self.scheme, self.total_cycles, self.accesses
        )?;
        writeln!(
            f,
            "  faults={} (inflight-wait={}, raced={}), hits={}, mean fault={}",
            self.faults,
            self.faults_waited_inflight,
            self.faults_found_resident,
            self.epc_hits,
            self.fault_service_mean
        )?;
        writeln!(
            f,
            "  preloads: started={} touched={} wasted={} aborted={} accuracy={:.1}%",
            self.preloads_started,
            self.preloads_touched,
            self.preloads_wasted,
            self.preloads_aborted,
            self.preload_accuracy() * 100.0
        )?;
        write!(
            f,
            "  sip: points={} checks={} notifies={}; channel util={:.1}%{}",
            self.instrumentation_points,
            self.sip_checks,
            self.sip_notifies,
            self.channel_utilization * 100.0,
            match self.dfp_stopped_at {
                Some(t) => format!("; DFP stopped at {t}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> RunReport {
        RunReport {
            label: "t".into(),
            scheme: Scheme::Baseline,
            total_cycles: Cycles::new(cycles),
            accesses: 100,
            executions: 100,
            epc_hits: 50,
            faults: 50,
            faults_waited_inflight: 0,
            faults_found_resident: 0,
            sip_checks: 0,
            sip_notifies: 0,
            instrumentation_points: 0,
            preloads_started: 10,
            preloads_touched: 8,
            preloads_wasted: 2,
            preloads_aborted: 1,
            background_evictions: 0,
            foreground_evictions: 0,
            dfp_stopped_at: None,
            channel_utilization: 0.5,
            fault_service_mean: Cycles::new(64_000),
        }
    }

    #[test]
    fn improvement_math() {
        let base = report(1_000);
        let better = report(900);
        let worse = report(1_100);
        assert!((better.improvement_over(&base) - 0.1).abs() < 1e-12);
        assert!((worse.improvement_over(&base) + 0.1).abs() < 1e-12);
        assert!((better.normalized_time(&base) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_rates() {
        let r = report(1_000);
        assert!((r.preload_accuracy() - 0.8).abs() < 1e-12);
        assert!((r.faults_per_kilo_access() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report(123_456).to_string();
        assert!(s.contains("123,456"));
        assert!(s.contains("accuracy=80.0%"));
    }

    #[test]
    #[should_panic(expected = "baseline must have run")]
    fn zero_baseline_panics() {
        let z = report(0);
        let r = report(10);
        let _ = r.normalized_time(&z);
    }
}
