//! Run reports: the measurements every figure is built from.

use std::fmt;

use sgx_kernel::CycleAttribution;
use sgx_sim::Cycles;

use crate::Scheme;

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number (non-finite values, which a
/// well-formed report never produces, are written as `0`).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

/// The outcome of one simulated run (one application under one scheme).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human label (benchmark name or custom).
    pub label: String,
    /// The scheme that ran.
    pub scheme: Scheme,
    /// End-to-end simulated time.
    pub total_cycles: Cycles,
    /// Page-touch events executed.
    pub accesses: u64,
    /// Dynamic executions (events weighted by their `repeats`).
    pub executions: u64,
    /// Accesses that hit the EPC directly.
    pub epc_hits: u64,
    /// Enclave page faults this application raised.
    pub faults: u64,
    /// Faults resolved by waiting on an in-flight preload.
    pub faults_waited_inflight: u64,
    /// Faults that found the page already preloaded (race win).
    pub faults_found_resident: u64,
    /// SIP bitmap checks executed.
    pub sip_checks: u64,
    /// SIP notifications sent (absent page at an instrumented site).
    pub sip_notifies: u64,
    /// Instrumentation points active during the run (paper Table 2).
    pub instrumentation_points: usize,
    /// Preloads started on the channel (whole-kernel).
    pub preloads_started: u64,
    /// Preloaded pages later touched (`AccPreloadCounter`).
    pub preloads_touched: u64,
    /// Preloaded pages evicted untouched — confirmed wasted work.
    pub preloads_wasted: u64,
    /// Queued preloads cancelled by the abort path.
    pub preloads_aborted: u64,
    /// Background (reclaimer) evictions.
    pub background_evictions: u64,
    /// Foreground (demand-path) evictions.
    pub foreground_evictions: u64,
    /// When the DFP-stop valve fired, if it did.
    pub dfp_stopped_at: Option<Cycles>,
    /// Load-channel utilization over the run.
    pub channel_utilization: f64,
    /// Mean end-to-end fault service time.
    pub fault_service_mean: Cycles,
    /// Median fault service time (log2-bucket lower bound; zero when the
    /// run had no faults).
    pub fault_service_p50: Cycles,
    /// 90th-percentile fault service time (bucket lower bound).
    pub fault_service_p90: Cycles,
    /// 99th-percentile fault service time (bucket lower bound).
    pub fault_service_p99: Cycles,
    /// Mean preload-completion-to-first-touch lead time (zero when no
    /// preload was ever touched).
    pub preload_lead_mean: Cycles,
    /// Median preload lead time (bucket lower bound).
    pub preload_lead_p50: Cycles,
    /// 90th-percentile preload lead time (bucket lower bound).
    pub preload_lead_p90: Cycles,
    /// 99th-percentile preload lead time (bucket lower bound).
    pub preload_lead_p99: Cycles,
    /// Cycles this application's demand faults spent waiting for the load
    /// channel (another requester's in-flight job) — the fairness signal
    /// of the multi-tenant scheduler.
    pub channel_wait_cycles: Cycles,
    /// Preload pages shed by tenant admission control (zero without a
    /// tenant policy).
    pub preloads_shed: u64,
    /// Median EPC residency (pages) sampled at this application's faults.
    pub residency_p50: u64,
    /// 99th-percentile EPC residency (pages) at this application's faults.
    pub residency_p99: u64,
    /// Per-subsystem cycle attribution: the run's `total_cycles` split into
    /// named buckets (`sum(buckets) == total_cycles`). In multi-app runs
    /// the whole-kernel overhead is clipped against this application's own
    /// total.
    pub attribution: CycleAttribution,
}

impl RunReport {
    /// Execution time normalized to a baseline run (the y-axis of
    /// Figs. 7–13): `< 1.0` is faster than baseline.
    ///
    /// # Panics
    ///
    /// Panics if the baseline took zero cycles.
    pub fn normalized_time(&self, baseline: &RunReport) -> f64 {
        assert!(
            baseline.total_cycles > Cycles::ZERO,
            "baseline must have run"
        );
        self.total_cycles.raw() as f64 / baseline.total_cycles.raw() as f64
    }

    /// Performance improvement over a baseline, as a fraction: `0.114`
    /// means 11.4% faster; negative values are regressions.
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        1.0 - self.normalized_time(baseline)
    }

    /// Fault-rate per 1,000 accesses.
    pub fn faults_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.faults as f64 * 1_000.0 / self.accesses as f64
        }
    }

    /// Share of completed preloads that were eventually used.
    pub fn preload_accuracy(&self) -> f64 {
        let denom = self.preloads_touched + self.preloads_wasted;
        if denom == 0 {
            0.0
        } else {
            self.preloads_touched as f64 / denom as f64
        }
    }

    /// Appends this report as a JSON object. Every field is deterministic
    /// for a fixed configuration and seed, so serial and parallel campaign
    /// runs emit byte-identical output.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"label\":");
        push_json_str(out, &self.label);
        out.push_str(",\"scheme\":");
        push_json_str(out, self.scheme.name());
        out.push_str(&format!(
            ",\"total_cycles\":{},\"accesses\":{},\"executions\":{},\
             \"epc_hits\":{},\"faults\":{},\"faults_waited_inflight\":{},\
             \"faults_found_resident\":{},\"sip_checks\":{},\"sip_notifies\":{},\
             \"instrumentation_points\":{},\"preloads_started\":{},\
             \"preloads_touched\":{},\"preloads_wasted\":{},\
             \"preloads_aborted\":{},\"background_evictions\":{},\
             \"foreground_evictions\":{},",
            self.total_cycles.raw(),
            self.accesses,
            self.executions,
            self.epc_hits,
            self.faults,
            self.faults_waited_inflight,
            self.faults_found_resident,
            self.sip_checks,
            self.sip_notifies,
            self.instrumentation_points,
            self.preloads_started,
            self.preloads_touched,
            self.preloads_wasted,
            self.preloads_aborted,
            self.background_evictions,
            self.foreground_evictions,
        ));
        match self.dfp_stopped_at {
            Some(t) => out.push_str(&format!("\"dfp_stopped_at\":{},", t.raw())),
            None => out.push_str("\"dfp_stopped_at\":null,"),
        }
        out.push_str("\"channel_utilization\":");
        push_json_f64(out, self.channel_utilization);
        out.push_str(&format!(
            ",\"fault_service_mean\":{},\"fault_service_p50\":{},\
             \"fault_service_p90\":{},\"fault_service_p99\":{},\
             \"preload_lead_mean\":{},\"preload_lead_p50\":{},\
             \"preload_lead_p90\":{},\"preload_lead_p99\":{},\
             \"channel_wait_cycles\":",
            self.fault_service_mean.raw(),
            self.fault_service_p50.raw(),
            self.fault_service_p90.raw(),
            self.fault_service_p99.raw(),
            self.preload_lead_mean.raw(),
            self.preload_lead_p50.raw(),
            self.preload_lead_p90.raw(),
            self.preload_lead_p99.raw(),
        ));
        out.push_str(&format!(
            "{},\"preloads_shed\":{},\"residency_p50\":{},\"residency_p99\":{},\
             \"attribution\":",
            self.channel_wait_cycles.raw(),
            self.preloads_shed,
            self.residency_p50,
            self.residency_p99,
        ));
        self.attribution.write_json(out);
        out.push_str(",\"preload_accuracy\":");
        push_json_f64(out, self.preload_accuracy());
        out.push_str(",\"faults_per_kilo_access\":");
        push_json_f64(out, self.faults_per_kilo_access());
        out.push('}');
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles over {} accesses",
            self.label, self.scheme, self.total_cycles, self.accesses
        )?;
        writeln!(
            f,
            "  faults={} (inflight-wait={}, raced={}), hits={}, mean fault={}",
            self.faults,
            self.faults_waited_inflight,
            self.faults_found_resident,
            self.epc_hits,
            self.fault_service_mean
        )?;
        writeln!(
            f,
            "  fault cycles p50/p90/p99={}/{}/{}; preload lead mean={} p50/p90/p99={}/{}/{}",
            self.fault_service_p50,
            self.fault_service_p90,
            self.fault_service_p99,
            self.preload_lead_mean,
            self.preload_lead_p50,
            self.preload_lead_p90,
            self.preload_lead_p99
        )?;
        writeln!(
            f,
            "  preloads: started={} touched={} wasted={} aborted={} accuracy={:.1}%",
            self.preloads_started,
            self.preloads_touched,
            self.preloads_wasted,
            self.preloads_aborted,
            self.preload_accuracy() * 100.0
        )?;
        writeln!(
            f,
            "  sip: points={} checks={} notifies={}; channel util={:.1}%{}",
            self.instrumentation_points,
            self.sip_checks,
            self.sip_notifies,
            self.channel_utilization * 100.0,
            match self.dfp_stopped_at {
                Some(t) => format!("; DFP stopped at {t}"),
                None => String::new(),
            }
        )?;
        writeln!(
            f,
            "  tenancy: channel wait={} shed={} residency p50/p99={}/{}",
            self.channel_wait_cycles, self.preloads_shed, self.residency_p50, self.residency_p99
        )?;
        write!(f, "  cycles: {}", self.attribution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> RunReport {
        RunReport {
            label: "t".into(),
            scheme: Scheme::Baseline,
            total_cycles: Cycles::new(cycles),
            accesses: 100,
            executions: 100,
            epc_hits: 50,
            faults: 50,
            faults_waited_inflight: 0,
            faults_found_resident: 0,
            sip_checks: 0,
            sip_notifies: 0,
            instrumentation_points: 0,
            preloads_started: 10,
            preloads_touched: 8,
            preloads_wasted: 2,
            preloads_aborted: 1,
            background_evictions: 0,
            foreground_evictions: 0,
            dfp_stopped_at: None,
            channel_utilization: 0.5,
            fault_service_mean: Cycles::new(64_000),
            fault_service_p50: Cycles::new(32_768),
            fault_service_p90: Cycles::new(65_536),
            fault_service_p99: Cycles::new(65_536),
            preload_lead_mean: Cycles::new(1_200),
            preload_lead_p50: Cycles::new(1_024),
            preload_lead_p90: Cycles::new(2_048),
            preload_lead_p99: Cycles::new(2_048),
            channel_wait_cycles: Cycles::new(7_000),
            preloads_shed: 3,
            residency_p50: 40,
            residency_p99: 60,
            attribution: CycleAttribution {
                app_compute: cycles.saturating_sub(200),
                demand_fault: 100,
                aex_eresume: 100,
                ..CycleAttribution::default()
            },
        }
    }

    #[test]
    fn improvement_math() {
        let base = report(1_000);
        let better = report(900);
        let worse = report(1_100);
        assert!((better.improvement_over(&base) - 0.1).abs() < 1e-12);
        assert!((worse.improvement_over(&base) + 0.1).abs() < 1e-12);
        assert!((better.normalized_time(&base) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_rates() {
        let r = report(1_000);
        assert!((r.preload_accuracy() - 0.8).abs() < 1e-12);
        assert!((r.faults_per_kilo_access() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report(123_456).to_string();
        assert!(s.contains("123,456"));
        assert!(s.contains("accuracy=80.0%"));
    }

    #[test]
    #[should_panic(expected = "baseline must have run")]
    fn zero_baseline_panics() {
        let z = report(0);
        let r = report(10);
        let _ = r.normalized_time(&z);
    }

    /// An empty run (zero accesses, zero completed preloads) must report
    /// clean zeros, never NaN, from the rate helpers.
    #[test]
    fn empty_run_rates_are_zero_not_nan() {
        let mut r = report(0);
        r.accesses = 0;
        r.faults = 0;
        r.preloads_touched = 0;
        r.preloads_wasted = 0;
        assert_eq!(r.faults_per_kilo_access(), 0.0);
        assert_eq!(r.preload_accuracy(), 0.0);
        assert!(!r.faults_per_kilo_access().is_nan());
        assert!(!r.preload_accuracy().is_nan());
    }

    /// Wasted-only preloads give 0% accuracy, not a division artifact.
    #[test]
    fn all_wasted_preloads_give_zero_accuracy() {
        let mut r = report(10);
        r.preloads_touched = 0;
        r.preloads_wasted = 4;
        assert_eq!(r.preload_accuracy(), 0.0);
    }

    #[test]
    fn json_round_trips_key_fields() {
        let mut s = String::new();
        report(123_456).write_json(&mut s);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"label\":\"t\""));
        assert!(s.contains("\"scheme\":\"baseline\""));
        assert!(s.contains("\"total_cycles\":123456"));
        assert!(s.contains("\"dfp_stopped_at\":null"));
        assert!(s.contains("\"preload_accuracy\":0.8"));
        assert!(s.contains("\"channel_utilization\":0.5"));
    }

    #[test]
    fn json_escapes_labels() {
        let mut r = report(1);
        r.label = "we\"ird\\lbl\n".into();
        let mut s = String::new();
        r.write_json(&mut s);
        assert!(s.contains("\"label\":\"we\\\"ird\\\\lbl\\n\""));
    }

    #[test]
    fn json_carries_percentile_fields() {
        let mut s = String::new();
        report(9).write_json(&mut s);
        assert!(s.contains("\"fault_service_p50\":32768"));
        assert!(s.contains("\"fault_service_p99\":65536"));
        assert!(s.contains("\"preload_lead_mean\":1200"));
        assert!(s.contains("\"preload_lead_p90\":2048"));
    }

    #[test]
    fn json_carries_attribution_object() {
        let mut s = String::new();
        report(1_000).write_json(&mut s);
        assert!(s.contains("\"attribution\":{\"app_compute\":800,\"demand_fault\":100,"));
        assert!(s.contains("\"eviction\":0},\"preload_accuracy\":"));
        assert!(report(1_000).to_string().contains("cycles: compute"));
    }

    #[test]
    fn json_carries_tenant_fields() {
        let mut s = String::new();
        report(9).write_json(&mut s);
        assert!(s.contains("\"channel_wait_cycles\":7000"));
        assert!(s.contains("\"preloads_shed\":3"));
        assert!(s.contains("\"residency_p50\":40"));
        assert!(s.contains("\"residency_p99\":60"));
        assert!(report(9).to_string().contains("channel wait=7,000"));
    }

    #[test]
    fn event_counts_tally_and_serialize() {
        use sgx_kernel::EventKind;
        let mut e = crate::EventCounts::default();
        e.bump(EventKind::Fault);
        e.bump(EventKind::Fault);
        e.bump(EventKind::PreloadStart);
        e.bump(EventKind::PreloadDone);
        e.bump(EventKind::ValveStopped);
        assert_eq!(e.faults, 2);
        assert_eq!(e.preload_starts, 1);
        assert_eq!(e.total(), 5);
        let mut s = String::new();
        e.write_json(&mut s);
        assert!(s.contains("\"faults\":2"));
        assert!(s.contains("\"valve_stops\":1"));
    }
}
