//! # sgx-preload-core — the end-to-end simulator
//!
//! Ties the substrate together: workloads from `sgx-workloads` execute
//! against the `sgx-kernel`/`sgx-epc` paging model under one of the paper's
//! five experimental arms ([`Scheme`]) — baseline, DFP, DFP-stop, SIP, or
//! the SIP+DFP hybrid — or one of the rival schemes: the §6 user-level
//! comparator and the EDMM-style dynamic-EPC arms (`edmm`,
//! `edmm+dfp-stop`).
//!
//! * [`SimConfig`] — the paper's parameters (EPC size, costs, `LOADLENGTH`,
//!   `stream_list` length, SIP threshold, valve slack), scalable for tests.
//! * [`SimRun`] — the unified entry point: benchmarks, prepared apps
//!   (multi-enclave EPC contention included), and outside-the-enclave
//!   workloads over one kernel, with streaming [`sgx_kernel::TraceSink`]
//!   subscriptions.
//! * [`RunReport`] — cycles, faults, preload accuracy, latency percentiles,
//!   SIP counters; every figure is derived from these.
//!
//! # Examples
//!
//! Reproducing one bar of Fig. 8 (DFP on the microbenchmark) at dev scale:
//!
//! ```
//! use sgx_preload_core::{Scheme, SimConfig, SimRun};
//! use sgx_workloads::{Benchmark, Scale};
//!
//! let cfg = SimConfig::at_scale(Scale::DEV);
//! let base = SimRun::new(&cfg).bench(Benchmark::Microbenchmark).run_one()?;
//! let dfp = SimRun::new(&cfg)
//!     .scheme(Scheme::Dfp)
//!     .bench(Benchmark::Microbenchmark)
//!     .run_one()?;
//! println!("DFP improvement: {:.1}%", dfp.improvement_over(&base) * 100.0);
//! assert!(dfp.improvement_over(&base) > 0.0);
//! # Ok::<(), sgx_preload_core::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod config;
mod replay;
mod report;
mod scheme;
mod simrun;
mod simulator;
mod userspace;

pub use campaign::{
    derive_cell_seed, effective_jobs, run_indexed, Campaign, CampaignError, CampaignReport, Cell,
    CellReport, CellWork, LeakageSpec, SeedMode, DEFAULT_TIMELINE_SERIES_INTERVAL, JOBS_ENV,
};
pub use config::SimConfig;
pub use replay::TraceReplay;
pub use report::RunReport;
pub use scheme::{ParseSchemeError, Scheme};
pub use sgx_dfp::{ParsePredictorKindError, PredictorKind};
pub use sgx_epc::{EpcSizing, TenantQuota};
pub use sgx_kernel::{
    render_chrome_trace, ChaosPreset, ChaosSchedule, ChaosStats, ChromeTraceSink, CycleAttribution,
    EventCounts, FaultInjector, GaugeSample, ParseChaosPresetError, SeriesFormat, SpanId,
    TenantPolicy, TenantShare, TenantStats, TimeSeriesSink, MAX_TENANTS,
};
pub use sgx_observer::{
    is_os_visible, LeakageMetric, LeakageReport, Observation, ObserverSink, OramModel,
    ParseLeakageMetricError, VariantLeakage,
};
pub use simrun::{SimError, SimRun};
pub use simulator::{build_kernel, build_plan, AppSpec, AppSpecBuilder, SpecError};
pub use userspace::{run_userspace_paging, UserPagingConfig};
