//! # sgx-preload-core — the end-to-end simulator
//!
//! Ties the substrate together: workloads from `sgx-workloads` execute
//! against the `sgx-kernel`/`sgx-epc` paging model under one of the paper's
//! five experimental arms ([`Scheme`]): baseline, DFP, DFP-stop, SIP, or
//! the SIP+DFP hybrid.
//!
//! * [`SimConfig`] — the paper's parameters (EPC size, costs, `LOADLENGTH`,
//!   `stream_list` length, SIP threshold, valve slack), scalable for tests.
//! * [`run_benchmark`] — the whole pipeline for one program: profile on the
//!   train input when SIP is on, then measure on the ref input.
//! * [`run_apps`] — the general entry point: one or more applications
//!   (multi-enclave EPC contention included) over one kernel.
//! * [`run_outside`] — the non-enclave execution used by the §1 motivation
//!   measurement (46× slowdown).
//! * [`RunReport`] — cycles, faults, preload accuracy, SIP counters; every
//!   figure is derived from these.
//!
//! # Examples
//!
//! Reproducing one bar of Fig. 8 (DFP on the microbenchmark) at dev scale:
//!
//! ```
//! use sgx_preload_core::{run_benchmark, Scheme, SimConfig};
//! use sgx_workloads::{Benchmark, Scale};
//!
//! let cfg = SimConfig::at_scale(Scale::DEV);
//! let base = run_benchmark(Benchmark::Microbenchmark, Scheme::Baseline, &cfg);
//! let dfp = run_benchmark(Benchmark::Microbenchmark, Scheme::Dfp, &cfg);
//! println!("DFP improvement: {:.1}%", dfp.improvement_over(&base) * 100.0);
//! assert!(dfp.improvement_over(&base) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod config;
mod report;
mod scheme;
mod simulator;
mod userspace;

pub use campaign::{
    derive_cell_seed, effective_jobs, Campaign, CampaignReport, Cell, CellReport, SeedMode,
    JOBS_ENV,
};
pub use config::SimConfig;
pub use report::{EventCounts, RunReport};
pub use scheme::Scheme;
pub use simulator::{build_plan, run_apps, run_apps_traced, run_benchmark, run_outside, AppSpec};
pub use userspace::{run_userspace_paging, UserPagingConfig};
