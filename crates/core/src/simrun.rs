//! The unified simulation entry point.
//!
//! [`SimRun`] is one builder for every kind of run (the four historical
//! `run_*` entrypoints it replaced are gone): pick a scheme, add work
//! (prepared [`AppSpec`]s, whole [`Benchmark`]s, or outside-the-enclave
//! workloads), attach any number of streaming [`TraceSink`]s, and run. All enclave entries share one kernel, EPC and
//! load channel — the paper's multi-enclave contention scenario falls out
//! of adding more than one.

use std::error::Error;
use std::fmt;

use sgx_kernel::{KernelError, TraceSink};
use sgx_sip::InstrumentationPlan;
use sgx_workloads::{AccessIter, Benchmark, InputSet};

use crate::replay::TraceReplay;
use crate::simulator::{build_plan, run_kernel_apps, run_outside_model, AppSpec, SpecError};
use crate::{RunReport, Scheme, SimConfig};

/// Errors from [`SimRun::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The builder had no work added.
    NoApps,
    /// Kernel construction or enclave/thread registration failed.
    Kernel(KernelError),
    /// An [`AppSpec`] was malformed (bad `thread_of` topology); raised by
    /// the pre-kernel validation pass.
    Spec(SpecError),
    /// [`SimRun::run_one`] was called with a number of entries other
    /// than one.
    NotSingular(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoApps => f.write_str("need at least one application"),
            SimError::Kernel(e) => write!(f, "kernel setup failed: {e}"),
            SimError::Spec(e) => write!(f, "bad app spec: {e}"),
            SimError::NotSingular(n) => {
                write!(f, "run_one expects exactly one entry, got {n} reports")
            }
        }
    }
}

impl Error for SimError {}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

enum Entry {
    App(AppSpec),
    Bench(Benchmark),
    Replay(TraceReplay),
    Outside { label: String, workload: AccessIter },
}

/// Builder for one simulation run.
///
/// # Examples
///
/// ```
/// use sgx_preload_core::{Scheme, SimConfig, SimRun};
/// use sgx_workloads::{Benchmark, Scale};
///
/// let cfg = SimConfig::at_scale(Scale::DEV);
/// let base = SimRun::new(&cfg)
///     .bench(Benchmark::Microbenchmark)
///     .run_one()?;
/// let dfp = SimRun::new(&cfg)
///     .scheme(Scheme::Dfp)
///     .bench(Benchmark::Microbenchmark)
///     .run_one()?;
/// assert!(dfp.total_cycles < base.total_cycles, "DFP helps streaming");
/// # Ok::<(), sgx_preload_core::SimError>(())
/// ```
///
/// With a streaming sink:
///
/// ```
/// use sgx_kernel::CountingSink;
/// use sgx_preload_core::{Scheme, SimConfig, SimRun};
/// use sgx_workloads::{Benchmark, Scale};
///
/// let cfg = SimConfig::at_scale(Scale::DEV);
/// let (sink, counts) = CountingSink::new();
/// let report = SimRun::new(&cfg)
///     .scheme(Scheme::Dfp)
///     .bench(Benchmark::Microbenchmark)
///     .sink(Box::new(sink))
///     .run_one()?;
/// assert_eq!(counts.get().faults, report.faults);
/// # Ok::<(), sgx_preload_core::SimError>(())
/// ```
pub struct SimRun<'a> {
    cfg: &'a SimConfig,
    scheme: Scheme,
    entries: Vec<Entry>,
    sinks: Vec<Box<dyn TraceSink>>,
}

impl<'a> SimRun<'a> {
    /// Starts a run under `cfg` with [`Scheme::Baseline`] and no work.
    pub fn new(cfg: &'a SimConfig) -> Self {
        SimRun {
            cfg,
            scheme: Scheme::Baseline,
            entries: Vec::new(),
            sinks: Vec::new(),
        }
    }

    /// Selects the paging scheme (default: baseline).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Adds a prepared application. All added apps share one kernel;
    /// [`AppSpec::thread_of`] indices count enclave entries (apps and
    /// non-user-level benches) in insertion order.
    pub fn app(mut self, app: AppSpec) -> Self {
        self.entries.push(Entry::App(app));
        self
    }

    /// Adds several prepared applications.
    pub fn apps(mut self, apps: impl IntoIterator<Item = AppSpec>) -> Self {
        self.entries.extend(apps.into_iter().map(Entry::App));
        self
    }

    /// Adds a benchmark end to end: profiling on the *train* input when the
    /// scheme instruments, then the measurement run on *ref*. Under a
    /// user-level scheme the benchmark runs on the userspace paging model
    /// instead of the kernel.
    pub fn bench(mut self, bench: Benchmark) -> Self {
        self.entries.push(Entry::Bench(bench));
        self
    }

    /// Adds a recorded trace as a workload. With a declared source
    /// benchmark ([`TraceReplay::of_benchmark`]) the entry behaves
    /// exactly like [`SimRun::bench`] — same label, ELRANGE, and SIP
    /// profiling pass — so a full recording replays to a byte-identical
    /// report. Anonymous replays size their ELRANGE from the trace and
    /// skip instrumentation.
    pub fn replay(mut self, replay: TraceReplay) -> Self {
        self.entries.push(Entry::Replay(replay));
        self
    }

    /// Adds a workload running *outside* any enclave: unlimited RAM,
    /// first-touch faults at the regular ≈2,000-cycle cost (the "without
    /// SGX" side of the paper's §1 motivation).
    pub fn outside(mut self, label: impl Into<String>, workload: AccessIter) -> Self {
        self.entries.push(Entry::Outside {
            label: label.into(),
            workload,
        });
        self
    }

    /// Subscribes a streaming trace sink to the run's kernel. Sinks observe
    /// the merged event stream of all enclave entries; outside/user-level
    /// entries produce no kernel events.
    pub fn sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Runs everything and returns one report per entry, in insertion
    /// order.
    ///
    /// # Errors
    ///
    /// [`SimError::NoApps`] when nothing was added, [`SimError::Kernel`]
    /// when kernel construction or registration fails, and
    /// [`SimError::Spec`] for a bad [`AppSpec::thread_of`] reference
    /// (caught before any kernel is built).
    pub fn run(self) -> Result<Vec<RunReport>, SimError> {
        if self.entries.is_empty() {
            return Err(SimError::NoApps);
        }
        let SimRun {
            cfg,
            scheme,
            entries,
            sinks,
        } = self;

        // Entries that bypass the kernel (outside model, user-level paging)
        // run immediately; enclave entries are gathered into one shared
        // kernel run and spliced back in order.
        enum Slot {
            Ready(Box<RunReport>),
            Kernel,
        }
        let mut slots = Vec::with_capacity(entries.len());
        let mut kernel_apps = Vec::new();
        for entry in entries {
            match entry {
                Entry::Outside { label, workload } => {
                    slots.push(Slot::Ready(Box::new(run_outside_model(
                        label, workload, cfg,
                    ))));
                }
                Entry::Bench(bench) if scheme.is_user_level() => {
                    slots.push(Slot::Ready(Box::new(crate::run_userspace_paging(
                        bench.name(),
                        bench.build(InputSet::Ref, cfg.scale, cfg.seed),
                        &cfg.user_paging,
                    ))));
                }
                Entry::Bench(bench) => {
                    let plan = build_plan(bench, cfg, scheme);
                    let app = AppSpec::new(
                        bench.name(),
                        bench.elrange_pages(cfg.scale),
                        bench.build(InputSet::Ref, cfg.scale, cfg.seed),
                    )
                    .plan(plan)
                    .build()?;
                    kernel_apps.push(app);
                    slots.push(Slot::Kernel);
                }
                Entry::Replay(replay) if scheme.is_user_level() => {
                    slots.push(Slot::Ready(Box::new(crate::run_userspace_paging(
                        replay.label().to_string(),
                        replay.stream(),
                        &cfg.user_paging,
                    ))));
                }
                Entry::Replay(replay) => {
                    let plan = match replay.source() {
                        Some(bench) => build_plan(bench, cfg, scheme),
                        None => InstrumentationPlan::none(),
                    };
                    let app = AppSpec::new(
                        replay.label().to_string(),
                        replay.elrange_pages(cfg.scale),
                        replay.stream(),
                    )
                    .plan(plan)
                    .build()?;
                    kernel_apps.push(app);
                    slots.push(Slot::Kernel);
                }
                Entry::App(app) => {
                    kernel_apps.push(app);
                    slots.push(Slot::Kernel);
                }
            }
        }

        let mut kernel_reports = if kernel_apps.is_empty() {
            Vec::new()
        } else {
            run_kernel_apps(kernel_apps, cfg, scheme, sinks)?
        }
        .into_iter();

        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(r) => *r,
                Slot::Kernel => kernel_reports
                    .next()
                    .expect("one kernel report per kernel slot"),
            })
            .collect())
    }

    /// Runs a single-entry build and returns its report.
    ///
    /// # Errors
    ///
    /// Everything [`SimRun::run`] reports, plus [`SimError::NotSingular`]
    /// when the builder holds more or fewer than one entry.
    pub fn run_one(self) -> Result<RunReport, SimError> {
        let mut reports = self.run()?;
        if reports.len() != 1 {
            return Err(SimError::NotSingular(reports.len()));
        }
        Ok(reports.pop().expect("length checked above"))
    }
}

impl fmt::Debug for SimRun<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRun")
            .field("scheme", &self.scheme)
            .field("entries", &self.entries.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_kernel::CountingSink;
    use sgx_workloads::Scale;

    fn cfg() -> SimConfig {
        SimConfig::at_scale(Scale::DEV)
    }

    #[test]
    fn empty_run_errors() {
        let c = cfg();
        assert_eq!(SimRun::new(&c).run(), Err(SimError::NoApps));
        assert!(SimError::NoApps
            .to_string()
            .contains("at least one application"));
    }

    #[test]
    fn run_one_rejects_multiple_entries() {
        let c = cfg();
        let r = SimRun::new(&c)
            .bench(Benchmark::Microbenchmark)
            .bench(Benchmark::Microbenchmark)
            .run_one();
        assert_eq!(r, Err(SimError::NotSingular(2)));
    }

    #[test]
    fn bad_thread_order_is_reported_before_any_kernel_exists() {
        let c = cfg();
        let app = AppSpec::new(
            "t",
            64,
            Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, 1),
        )
        .thread_of(0)
        .build()
        .unwrap();
        let r = SimRun::new(&c).app(app).run();
        assert_eq!(r, Err(SimError::Spec(SpecError::ThreadOrder { app: 0 })));
        assert!(r.unwrap_err().to_string().contains("earlier app"));
    }

    #[test]
    fn empty_elrange_fails_at_build_time() {
        let c = cfg();
        let r = AppSpec::new(
            "t",
            0,
            Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, 1),
        )
        .build();
        assert!(matches!(r, Err(SpecError::EmptyElrange)));
        // A thread entry has no ELRANGE of its own, so zero is fine there.
        let t = AppSpec::new(
            "t",
            0,
            Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, 1),
        )
        .thread_of(0)
        .build();
        assert!(t.is_ok());
    }

    #[test]
    fn zero_epc_is_a_kernel_error() {
        let mut c = cfg();
        c.epc_pages = 0;
        let r = SimRun::new(&c).bench(Benchmark::Microbenchmark).run();
        assert_eq!(r, Err(SimError::Kernel(KernelError::NoEpc)));
    }

    #[test]
    fn mixed_entries_keep_input_order() {
        let c = cfg();
        let reports = SimRun::new(&c)
            .outside(
                "outside",
                Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, 42),
            )
            .bench(Benchmark::Microbenchmark)
            .run()
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "outside");
        assert_eq!(reports[1].label, Benchmark::Microbenchmark.name());
        // The enclave run is an order of magnitude slower (the paper's
        // motivation measurement).
        assert!(reports[1].total_cycles > reports[0].total_cycles);
    }

    #[test]
    fn sinks_observe_the_shared_kernel() {
        let c = cfg();
        let (sink, counts) = CountingSink::new();
        let report = SimRun::new(&c)
            .scheme(Scheme::Dfp)
            .bench(Benchmark::Microbenchmark)
            .sink(Box::new(sink))
            .run_one()
            .unwrap();
        let ev = counts.get();
        assert_eq!(ev.faults, report.faults);
        assert_eq!(ev.preload_starts, report.preloads_started);
        assert!(ev.preload_hits > 0, "streaming workload preloads pages");
    }

    #[test]
    fn replayed_recordings_match_generator_runs() {
        let c = cfg();
        for scheme in Scheme::ALL {
            let direct = SimRun::new(&c)
                .scheme(scheme)
                .bench(Benchmark::Lbm)
                .run_one()
                .unwrap();
            let trace = sgx_workloads::RecordedTrace::record(
                Benchmark::Lbm.build(InputSet::Ref, c.scale, c.seed),
                usize::MAX,
            );
            let replayed = SimRun::new(&c)
                .scheme(scheme)
                .replay(TraceReplay::of_benchmark(Benchmark::Lbm, trace))
                .run_one()
                .unwrap();
            assert_eq!(direct, replayed, "{scheme}: replay must be exact");
        }
    }

    #[test]
    fn percentiles_populated_for_faulting_runs() {
        let c = cfg();
        let r = SimRun::new(&c)
            .scheme(Scheme::Dfp)
            .bench(Benchmark::Microbenchmark)
            .run_one()
            .unwrap();
        assert!(r.fault_service_p50 > sgx_sim::Cycles::ZERO);
        assert!(r.fault_service_p50 <= r.fault_service_p99);
        assert!(r.preload_lead_p50 <= r.preload_lead_p99);
    }
}
