//! Fleet-level results: SLO latency percentiles, lifecycle counts, and
//! per-host breakdowns, with canonical (jobs/wall-clock free) and full
//! JSON serializations mirroring the campaign report conventions.

use std::fmt;

use sgx_kernel::CycleAttribution;
use sgx_preload_core::Scheme;
use sgx_sim::Histogram;

use crate::host::HostOutcome;
use crate::{ArrivalProcess, PlacementPolicy};

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The SLO latency distribution over every executed (non-shed) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Executed requests (sheds excluded).
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: u64,
    /// Median latency in cycles (log2-bucket resolution).
    pub p50: u64,
    /// 95th-percentile latency in cycles.
    pub p95: u64,
    /// 99th-percentile latency in cycles.
    pub p99: u64,
    /// 99.9th-percentile latency in cycles.
    pub p999: u64,
    /// Worst observed latency in cycles.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a latency histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        let q = |q| h.quantile(q).map(|c| c.raw()).unwrap_or(0);
        LatencySummary {
            count: h.count(),
            mean: h.mean().raw(),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            p999: q(0.999),
            max: h.max().map(|c| c.raw()).unwrap_or(0),
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\
             \"p999\":{},\"max\":{}}}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        ));
    }
}

/// One host's share of the fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostReport {
    /// Host index in the fleet.
    pub index: usize,
    /// The positional seed the host ran with (`mix(fleet_seed, index)`).
    pub seed: u64,
    /// Service enclave instances placed on this host.
    pub services: usize,
    /// The host's final simulated instant (max service clock).
    pub end_cycles: u64,
    /// Requests that arrived here (executed + shed).
    pub requests: u64,
    /// Requests shed by overload protection.
    pub shed: u64,
    /// Executed requests whose latency exceeded the SLO bound.
    pub violations: u64,
    /// Enclave cold starts billed (first request + post-teardown).
    pub spawns: u64,
    /// Idle teardowns (EREMOVE-style reaps).
    pub teardowns: u64,
    /// Instances migrated onto this host by the plan.
    pub migrations_in: u64,
    /// Application page accesses executed.
    pub accesses: u64,
    /// Accesses that hit the EPC.
    pub epc_hits: u64,
    /// Page faults (kernel-counted; equals the driver's tally whenever
    /// the accounting residual is zero).
    pub faults: u64,
    /// Demand loads the fault handler issued.
    pub demand_loads: u64,
    /// Preloads started on the load channel.
    pub preloads_started: u64,
    /// Preloaded pages later touched (useful speculation).
    pub preloads_touched: u64,
    /// Preloaded pages evicted untouched (wasted speculation).
    pub preloads_wasted: u64,
    /// Cold-start cycles billed to requests on this host.
    pub startup_cycles: u64,
    /// This host's latency distribution.
    pub latency: LatencySummary,
    /// Per-subsystem split of `end_cycles`.
    pub attribution: CycleAttribution,
    /// `|attribution total - end_cycles| + |driver faults - kernel
    /// faults|`; zero when the books balance.
    pub accounting_residual: u64,
}

impl HostReport {
    pub(crate) fn from_outcome(o: &HostOutcome) -> Self {
        HostReport {
            index: o.index,
            seed: o.seed,
            services: o.services,
            end_cycles: o.end_cycles,
            requests: o.requests,
            shed: o.shed,
            violations: o.violations,
            spawns: o.spawns,
            teardowns: o.teardowns,
            migrations_in: o.migrations_in,
            accesses: o.accesses,
            epc_hits: o.epc_hits,
            faults: o.faults,
            demand_loads: o.demand_loads,
            preloads_started: o.preloads_started,
            preloads_touched: o.preloads_touched,
            preloads_wasted: o.preloads_wasted,
            startup_cycles: o.startup_cycles,
            latency: LatencySummary::from_histogram(&o.latency),
            attribution: o.attribution,
            accounting_residual: o.accounting_residual,
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"index\":{},\"seed\":{},\"services\":{},\"end_cycles\":{},\
             \"requests\":{},\"shed\":{},\"violations\":{},\"spawns\":{},\
             \"teardowns\":{},\"migrations_in\":{},\"accesses\":{},\
             \"epc_hits\":{},\"faults\":{},\"demand_loads\":{},\
             \"preloads_started\":{},\"preloads_touched\":{},\
             \"preloads_wasted\":{},\"startup_cycles\":{},\"latency\":",
            self.index,
            self.seed,
            self.services,
            self.end_cycles,
            self.requests,
            self.shed,
            self.violations,
            self.spawns,
            self.teardowns,
            self.migrations_in,
            self.accesses,
            self.epc_hits,
            self.faults,
            self.demand_loads,
            self.preloads_started,
            self.preloads_touched,
            self.preloads_wasted,
            self.startup_cycles,
        ));
        self.latency.write_json(out);
        out.push_str(",\"attribution\":");
        self.attribution.write_json(out);
        out.push_str(&format!(
            ",\"accounting_residual\":{}}}",
            self.accounting_residual
        ));
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The master fleet seed.
    pub fleet_seed: u64,
    /// Hosts simulated.
    pub hosts: usize,
    /// Nominal service enclaves per host (migration may shift instances).
    pub enclaves_per_host: usize,
    /// The paging scheme every host ran.
    pub scheme: Scheme,
    /// The arrival process (serialized through its `Display` form).
    pub arrival: ArrivalProcess,
    /// The placement policy.
    pub placement: PlacementPolicy,
    /// Run duration in cycles.
    pub duration: u64,
    /// SLO latency bound in cycles.
    pub slo: u64,
    /// Worker threads the run used (excluded from canonical JSON).
    pub jobs: usize,
    /// Host wall-clock nanoseconds (non-deterministic; excluded from
    /// canonical JSON).
    pub wall_nanos: u64,
    /// Requests that arrived fleet-wide (executed + shed).
    pub requests: u64,
    /// Requests shed by overload protection.
    pub shed: u64,
    /// Executed requests whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Enclave cold starts billed.
    pub spawns: u64,
    /// Idle teardowns.
    pub teardowns: u64,
    /// Plan-time migrations applied.
    pub migrations: u64,
    /// Application page accesses executed.
    pub accesses: u64,
    /// Page faults fleet-wide.
    pub faults: u64,
    /// Demand loads fleet-wide.
    pub demand_loads: u64,
    /// Preloads started fleet-wide.
    pub preloads_started: u64,
    /// Preloads later touched fleet-wide.
    pub preloads_touched: u64,
    /// Preloads evicted untouched fleet-wide.
    pub preloads_wasted: u64,
    /// Cold-start cycles billed fleet-wide.
    pub startup_cycles: u64,
    /// Sum of every host's final instant — the fleet's aggregate
    /// simulated cycles, which the per-host attribution buckets must
    /// re-add to exactly.
    pub total_cycles: u64,
    /// Sum of per-host accounting residuals; zero when every host's
    /// attribution and fault tallies balance.
    pub accounting_residual: u64,
    /// The fleet-wide latency distribution (per-host histograms merged).
    pub latency: LatencySummary,
    /// Per-host breakdowns, host-index order.
    pub host_reports: Vec<HostReport>,
}

impl FleetReport {
    fn write_json(&self, out: &mut String, canonical: bool) {
        out.push_str(&format!(
            "{{\"fleet_seed\":{},\"hosts\":{},\"enclaves_per_host\":{},",
            self.fleet_seed, self.hosts, self.enclaves_per_host
        ));
        out.push_str("\"scheme\":");
        push_json_str(out, &self.scheme.to_string());
        out.push_str(",\"arrival\":");
        push_json_str(out, &self.arrival.to_string());
        out.push_str(",\"placement\":");
        push_json_str(out, &self.placement.to_string());
        out.push_str(&format!(
            ",\"duration\":{},\"slo\":{},",
            self.duration, self.slo
        ));
        if !canonical {
            out.push_str(&format!(
                "\"jobs\":{},\"wall_nanos\":{},",
                self.jobs, self.wall_nanos
            ));
        }
        out.push_str(&format!(
            "\"requests\":{},\"shed\":{},\"slo_violations\":{},\"spawns\":{},\
             \"teardowns\":{},\"migrations\":{},\"accesses\":{},\"faults\":{},\
             \"demand_loads\":{},\"preloads_started\":{},\
             \"preloads_touched\":{},\"preloads_wasted\":{},\
             \"startup_cycles\":{},\"total_cycles\":{},\
             \"accounting_residual\":{},\"latency\":",
            self.requests,
            self.shed,
            self.slo_violations,
            self.spawns,
            self.teardowns,
            self.migrations,
            self.accesses,
            self.faults,
            self.demand_loads,
            self.preloads_started,
            self.preloads_touched,
            self.preloads_wasted,
            self.startup_cycles,
            self.total_cycles,
            self.accounting_residual,
        ));
        self.latency.write_json(out);
        out.push_str(",\"host_reports\":[");
        for (i, h) in self.host_reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            h.write_json(out);
        }
        out.push_str("]}");
    }

    /// Deterministic JSON: everything except worker count and wall-clock
    /// timing, so reports from any `--jobs` compare byte-for-byte.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, true);
        out.push('\n');
        out
    }

    /// Full JSON including `jobs` and `wall_nanos`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, false);
        out.push('\n');
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} hosts x {} enclaves, {} ({}, {})",
            self.hosts, self.enclaves_per_host, self.scheme, self.arrival, self.placement
        )?;
        writeln!(
            f,
            "  requests: {} ({} shed, {} SLO violations of {} cycles)",
            self.requests, self.shed, self.slo_violations, self.slo
        )?;
        writeln!(
            f,
            "  lifecycle: {} spawns, {} teardowns, {} migrations, {} startup cycles",
            self.spawns, self.teardowns, self.migrations, self.startup_cycles
        )?;
        writeln!(
            f,
            "  latency p50/p95/p99/p99.9: {}/{}/{}/{} cycles (max {})",
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.p999,
            self.latency.max
        )?;
        write!(
            f,
            "  paging: {} faults, {} preloads started ({} touched, {} wasted)",
            self.faults, self.preloads_started, self.preloads_touched, self.preloads_wasted
        )
    }
}
