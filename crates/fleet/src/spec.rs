//! The fleet specification: a validated, typed description of one fleet
//! run, built through [`FleetSpecBuilder`] (fallible-first — malformed
//! specs are rejected before any host kernel exists).

use std::fmt;
use std::path::PathBuf;

use sgx_preload_core::{Scheme, SimConfig, SimError};
use sgx_workloads::Scale;

use crate::{ArrivalProcess, PlacementPolicy};

/// Default run duration in simulated cycles: long enough for every
/// service to pay its cold start (~2 M cycles at dev scale) and then
/// serve a handful of warm requests at the default arrival gap.
pub const DEFAULT_DURATION: u64 = 1 << 24;

/// Default SLO latency bound in cycles (a cold-start spawn typically
/// blows through it — the paper's "lost seconds").
pub const DEFAULT_SLO: u64 = 500_000;

/// Default shed bound: a request that has queued longer than this before
/// starting is dropped without executing.
pub const DEFAULT_SHED_AFTER: u64 = 4_000_000;

/// Hard per-service request cap (memory bound for degenerate specs).
pub const MAX_REQUESTS_PER_SERVICE: u64 = 4_096;

/// A fleet run that failed to validate or execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The spec declared zero hosts.
    NoHosts,
    /// The spec declared zero enclaves per host.
    NoEnclaves,
    /// The spec declared a zero-cycle duration.
    ZeroDuration,
    /// The arrival process has a zero parameter (mean gap, burst, or
    /// period).
    DegenerateArrival,
    /// The SLO latency bound is zero.
    ZeroSlo,
    /// A host simulation failed; carries the failing host's index and
    /// the underlying simulator error.
    Host {
        /// Index of the failing host.
        host: usize,
        /// What went wrong on that host.
        source: SimError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoHosts => f.write_str("a fleet needs at least one host"),
            FleetError::NoEnclaves => f.write_str("a fleet needs at least one enclave per host"),
            FleetError::ZeroDuration => f.write_str("a fleet run needs a non-zero duration"),
            FleetError::DegenerateArrival => {
                f.write_str("the arrival process needs non-zero parameters")
            }
            FleetError::ZeroSlo => f.write_str("the SLO latency bound must be non-zero"),
            FleetError::Host { host, source } => write!(f, "fleet host {host}: {source}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Host { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A validated fleet specification. Construct through [`FleetSpec::new`]
/// (which returns the builder); run with [`FleetSpec::run`].
///
/// [`FleetSpec::run`]: crate::FleetSpec::run
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Service enclaves per host.
    pub enclaves_per_host: usize,
    /// Master fleet seed; host `i` derives `mix(seed, i)`.
    pub seed: u64,
    /// The open-loop request arrival process.
    pub arrival: ArrivalProcess,
    /// How services are assigned to hosts.
    pub placement: PlacementPolicy,
    /// Run duration in simulated cycles (arrivals stop at this instant).
    pub duration: u64,
    /// The paging scheme every host kernel runs.
    pub scheme: Scheme,
    /// Per-host simulator configuration (EPC size, costs, scale).
    pub cfg: SimConfig,
    /// SLO latency bound in cycles; completions above it count as
    /// violations.
    pub slo: u64,
    /// Queue-wait bound in cycles; a request that waited longer before
    /// starting is shed without executing (`0` disables shedding).
    pub shed_after: u64,
    /// Idle gap in cycles after which a service enclave is torn down and
    /// its next request re-pays the cold-start cost (`0` disables
    /// teardown).
    pub idle_timeout: u64,
    /// Enables plan-time migration off hosts under sustained EPC
    /// pressure.
    pub migrate: bool,
    /// Pressure threshold (estimated resident footprint over EPC pages)
    /// that must hold for two consecutive epochs to trigger a migration.
    pub migrate_threshold: f64,
    /// When set, each host writes an EPC-pressure gauge series to
    /// `<dir>/host_<i>.series.csv`.
    pub series_dir: Option<PathBuf>,
}

impl FleetSpec {
    /// Starts building a fleet of `hosts` hosts with `enclaves_per_host`
    /// service enclaves each. Finish with [`FleetSpecBuilder::build`].
    #[allow(clippy::new_ret_no_self)] // `new` is the builder's entry point
    pub fn new(hosts: usize, enclaves_per_host: usize) -> FleetSpecBuilder {
        FleetSpecBuilder {
            spec: FleetSpec {
                hosts,
                enclaves_per_host,
                seed: 42,
                arrival: ArrivalProcess::default(),
                placement: PlacementPolicy::default(),
                duration: DEFAULT_DURATION,
                scheme: Scheme::Dfp,
                cfg: SimConfig::at_scale(Scale::new(64)),
                slo: DEFAULT_SLO,
                shed_after: DEFAULT_SHED_AFTER,
                idle_timeout: 0,
                migrate: false,
                migrate_threshold: 1.25,
                series_dir: None,
            },
        }
    }
}

/// Builder for [`FleetSpec`] (mirrors the workspace naming:
/// `FleetSpec::new(..).arrival(..).build()?`).
#[derive(Debug, Clone)]
pub struct FleetSpecBuilder {
    spec: FleetSpec,
}

impl FleetSpecBuilder {
    /// Sets the master fleet seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.spec.arrival = arrival;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.spec.placement = placement;
        self
    }

    /// Sets the run duration in cycles.
    pub fn duration(mut self, cycles: u64) -> Self {
        self.spec.duration = cycles;
        self
    }

    /// Sets the paging scheme every host runs.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.spec.scheme = scheme;
        self
    }

    /// Replaces the per-host simulator configuration.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.spec.cfg = cfg;
        self
    }

    /// Sets the SLO latency bound in cycles.
    pub fn slo(mut self, cycles: u64) -> Self {
        self.spec.slo = cycles;
        self
    }

    /// Sets the shed bound in cycles (`0` disables shedding).
    pub fn shed_after(mut self, cycles: u64) -> Self {
        self.spec.shed_after = cycles;
        self
    }

    /// Sets the idle-teardown gap in cycles (`0` disables teardown).
    pub fn idle_timeout(mut self, cycles: u64) -> Self {
        self.spec.idle_timeout = cycles;
        self
    }

    /// Enables plan-time migration under sustained EPC pressure.
    pub fn migrate(mut self, on: bool) -> Self {
        self.spec.migrate = on;
        self
    }

    /// Sets the sustained-pressure threshold that triggers migration.
    pub fn migrate_threshold(mut self, threshold: f64) -> Self {
        self.spec.migrate_threshold = threshold;
        self
    }

    /// Streams per-host EPC-pressure gauge series into `dir`.
    pub fn series_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.series_dir = Some(dir.into());
        self
    }

    /// Validates the spec and builds it.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoHosts`], [`FleetError::NoEnclaves`],
    /// [`FleetError::ZeroDuration`], [`FleetError::DegenerateArrival`],
    /// or [`FleetError::ZeroSlo`] when the corresponding parameter is
    /// degenerate.
    pub fn build(self) -> Result<FleetSpec, FleetError> {
        let s = &self.spec;
        if s.hosts == 0 {
            return Err(FleetError::NoHosts);
        }
        if s.enclaves_per_host == 0 {
            return Err(FleetError::NoEnclaves);
        }
        if s.duration == 0 {
            return Err(FleetError::ZeroDuration);
        }
        if !s.arrival.is_valid() {
            return Err(FleetError::DegenerateArrival);
        }
        if s.slo == 0 {
            return Err(FleetError::ZeroSlo);
        }
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_degenerate_specs() {
        assert_eq!(
            FleetSpec::new(0, 4).build().unwrap_err(),
            FleetError::NoHosts
        );
        assert_eq!(
            FleetSpec::new(2, 0).build().unwrap_err(),
            FleetError::NoEnclaves
        );
        assert_eq!(
            FleetSpec::new(2, 2).duration(0).build().unwrap_err(),
            FleetError::ZeroDuration
        );
        assert_eq!(
            FleetSpec::new(2, 2)
                .arrival(ArrivalProcess::Poisson { mean_gap: 0 })
                .build()
                .unwrap_err(),
            FleetError::DegenerateArrival
        );
        assert_eq!(
            FleetSpec::new(2, 2).slo(0).build().unwrap_err(),
            FleetError::ZeroSlo
        );
        assert!(FleetSpec::new(2, 2).build().is_ok());
    }
}
