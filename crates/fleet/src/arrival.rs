//! Open-loop request arrival processes.
//!
//! Each service instance draws its request schedule from a seeded
//! [`DetRng`] stream, so the schedule depends only on the fleet seed and
//! the service's position — never on worker count or wall-clock time.

use std::fmt;
use std::str::FromStr;

use sgx_sim::DetRng;

/// Default mean inter-arrival gap in cycles. Sized against the measured
/// unloaded service time at dev scale (~0.5–1 M cycles per request), so
/// a fleet run with default knobs is moderately loaded rather than in
/// permanent overload.
pub const DEFAULT_MEAN_GAP: u64 = 2_097_152;

/// Default burst length for [`ArrivalProcess::Bursty`].
pub const DEFAULT_BURST: u32 = 8;

/// Default period multiplier for [`ArrivalProcess::Diurnal`]: the period
/// defaults to `mean_gap * 256`.
pub const DEFAULT_PERIOD_GAPS: u64 = 256;

/// Gap multipliers across the eight phases of a diurnal period: long
/// gaps at "night" (phases 0, 7), short gaps at "midday" (phases 3, 4).
const DIURNAL_GAP_MULT: [u64; 8] = [8, 4, 2, 1, 1, 2, 4, 8];

/// An open-loop arrival process: how request inter-arrival gaps are
/// drawn. All three processes draw from geometric distributions (the
/// discrete analogue of exponential gaps), so every gap is at least one
/// cycle and the draw count per request is fixed — schedules are
/// bit-stable for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals with the given mean gap (cycles).
    Poisson {
        /// Mean inter-arrival gap in cycles (must be non-zero).
        mean_gap: u64,
    },
    /// On/off arrivals: runs of `burst` back-to-back requests (mean gap
    /// `mean_gap / 8`, floored at one) separated by long off periods
    /// (mean gap `mean_gap * burst`).
    Bursty {
        /// Mean gap of the underlying process in cycles (non-zero).
        mean_gap: u64,
        /// Requests per burst (non-zero).
        burst: u32,
    },
    /// Daily-curve arrivals: the mean gap is scaled by an eight-phase
    /// multiplier table over each `period` (slow "nights", fast
    /// "middays").
    Diurnal {
        /// Baseline mean gap in cycles (non-zero).
        mean_gap: u64,
        /// Length of one day in cycles (non-zero).
        period: u64,
    },
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess::Poisson {
            mean_gap: DEFAULT_MEAN_GAP,
        }
    }
}

impl ArrivalProcess {
    /// The process's mean gap parameter.
    pub fn mean_gap(&self) -> u64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap }
            | ArrivalProcess::Bursty { mean_gap, .. }
            | ArrivalProcess::Diurnal { mean_gap, .. } => mean_gap,
        }
    }

    /// True when every parameter is non-zero (a zero mean gap, burst, or
    /// period would make the process degenerate).
    pub fn is_valid(&self) -> bool {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap > 0,
            ArrivalProcess::Bursty { mean_gap, burst } => mean_gap > 0 && burst > 0,
            ArrivalProcess::Diurnal { mean_gap, period } => mean_gap > 0 && period > 0,
        }
    }

    /// Draws the gap (cycles, ≥ 1) before request `index` of a service,
    /// given the previous arrival instant `t`.
    pub fn next_gap(&self, rng: &mut DetRng, t: u64, index: u64) -> u64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => geometric_mean(rng, mean_gap),
            ArrivalProcess::Bursty { mean_gap, burst } => {
                if index.is_multiple_of(burst as u64) {
                    // Off period before the burst starts.
                    geometric_mean(rng, mean_gap.saturating_mul(burst as u64))
                } else {
                    geometric_mean(rng, (mean_gap / 8).max(1))
                }
            }
            ArrivalProcess::Diurnal { mean_gap, period } => {
                let phase_len = (period / 8).max(1);
                let phase = (t / phase_len) % 8;
                geometric_mean(
                    rng,
                    mean_gap.saturating_mul(DIURNAL_GAP_MULT[phase as usize]),
                )
            }
        }
    }
}

/// A geometric draw with the given mean (support ≥ 1).
fn geometric_mean(rng: &mut DetRng, mean: u64) -> u64 {
    if mean <= 1 {
        1
    } else {
        rng.geometric(1.0 / mean as f64)
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => write!(f, "poisson:{mean_gap}"),
            ArrivalProcess::Bursty { mean_gap, burst } => write!(f, "bursty:{mean_gap}x{burst}"),
            ArrivalProcess::Diurnal { mean_gap, period } => {
                write!(f, "diurnal:{mean_gap}/{period}")
            }
        }
    }
}

/// Error parsing an [`ArrivalProcess`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArrivalError {
    input: String,
}

impl fmt::Display for ParseArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown arrival process {:?} (expected poisson[:GAP], \
             bursty[:GAPxBURST], or diurnal[:GAP/PERIOD] with non-zero \
             parameters)",
            self.input
        )
    }
}

impl std::error::Error for ParseArrivalError {}

impl FromStr for ArrivalProcess {
    type Err = ParseArrivalError;

    /// Parses `poisson[:GAP]`, `bursty[:GAPxBURST]`, or
    /// `diurnal[:GAP/PERIOD]` (names case-insensitive; bare names take
    /// the defaults). Zero parameters are rejected, so a parsed process
    /// is always [`ArrivalProcess::is_valid`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseArrivalError {
            input: s.to_string(),
        };
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let process = match name.to_ascii_lowercase().as_str() {
            "poisson" => {
                let mean_gap = match params {
                    None => DEFAULT_MEAN_GAP,
                    Some(p) => p.parse().map_err(|_| err())?,
                };
                ArrivalProcess::Poisson { mean_gap }
            }
            "bursty" => match params {
                None => ArrivalProcess::Bursty {
                    mean_gap: DEFAULT_MEAN_GAP,
                    burst: DEFAULT_BURST,
                },
                Some(p) => {
                    let (gap, burst) = p.split_once('x').ok_or_else(err)?;
                    ArrivalProcess::Bursty {
                        mean_gap: gap.parse().map_err(|_| err())?,
                        burst: burst.parse().map_err(|_| err())?,
                    }
                }
            },
            "diurnal" => match params {
                None => ArrivalProcess::Diurnal {
                    mean_gap: DEFAULT_MEAN_GAP,
                    period: DEFAULT_MEAN_GAP * DEFAULT_PERIOD_GAPS,
                },
                Some(p) => {
                    let (gap, period) = p.split_once('/').ok_or_else(err)?;
                    ArrivalProcess::Diurnal {
                        mean_gap: gap.parse().map_err(|_| err())?,
                        period: period.parse().map_err(|_| err())?,
                    }
                }
            },
            _ => return Err(err()),
        };
        if !process.is_valid() {
            return Err(err());
        }
        Ok(process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for p in [
            ArrivalProcess::Poisson { mean_gap: 1 },
            ArrivalProcess::Poisson { mean_gap: 8192 },
            ArrivalProcess::Bursty {
                mean_gap: 4096,
                burst: 8,
            },
            ArrivalProcess::Diurnal {
                mean_gap: 4096,
                period: 1 << 20,
            },
        ] {
            assert_eq!(p.to_string().parse::<ArrivalProcess>(), Ok(p));
        }
    }

    #[test]
    fn bare_names_take_defaults() {
        assert_eq!(
            "poisson".parse::<ArrivalProcess>(),
            Ok(ArrivalProcess::Poisson {
                mean_gap: DEFAULT_MEAN_GAP
            })
        );
        assert_eq!(
            "BURSTY".parse::<ArrivalProcess>(),
            Ok(ArrivalProcess::Bursty {
                mean_gap: DEFAULT_MEAN_GAP,
                burst: DEFAULT_BURST
            })
        );
        assert!("diurnal".parse::<ArrivalProcess>().is_ok());
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!("poisson:0".parse::<ArrivalProcess>().is_err());
        assert!("bursty:4096x0".parse::<ArrivalProcess>().is_err());
        assert!("diurnal:0/100".parse::<ArrivalProcess>().is_err());
        assert!("exponential:5".parse::<ArrivalProcess>().is_err());
        assert!("bursty:4096".parse::<ArrivalProcess>().is_err());
    }

    #[test]
    fn gaps_are_positive_and_deterministic() {
        let p = ArrivalProcess::Diurnal {
            mean_gap: 1000,
            period: 1 << 16,
        };
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        let mut t = 0;
        for i in 0..256 {
            let ga = p.next_gap(&mut a, t, i);
            let gb = p.next_gap(&mut b, t, i);
            assert_eq!(ga, gb);
            assert!(ga >= 1);
            t += ga;
        }
    }
}
