//! Tenant placement: which host each service instance lands on.

use std::fmt;
use std::str::FromStr;

/// How the fleet controller assigns service instances to hosts. All
/// policies are pure functions of the spec, so placement is identical at
/// any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Service `k` lands on host `k % hosts`: consecutive services (and
    /// so consecutive catalog entries) spread across hosts.
    #[default]
    RoundRobin,
    /// Hosts fill one at a time: service `k` lands on host
    /// `k / enclaves_per_host`, co-locating consecutive services.
    Packed,
    /// Greedy footprint balancing: each service (in order) lands on the
    /// host with the smallest total ELRANGE footprint so far, subject to
    /// the per-host enclave capacity; ties break toward the lowest host
    /// index.
    LeastLoaded,
}

impl PlacementPolicy {
    /// Assigns `footprints.len()` services to `hosts` hosts, returning
    /// one host index per service. `per_host` is the nominal enclave
    /// capacity of each host (services.len() / hosts for a full grid).
    pub fn assign(&self, footprints: &[u64], hosts: usize, per_host: usize) -> Vec<usize> {
        assert!(hosts > 0, "placement needs at least one host");
        let capacity = per_host.max(footprints.len().div_ceil(hosts));
        match self {
            PlacementPolicy::RoundRobin => (0..footprints.len()).map(|k| k % hosts).collect(),
            PlacementPolicy::Packed => (0..footprints.len())
                .map(|k| (k / capacity).min(hosts - 1))
                .collect(),
            PlacementPolicy::LeastLoaded => {
                let mut load = vec![0u64; hosts];
                let mut count = vec![0usize; hosts];
                footprints
                    .iter()
                    .map(|&fp| {
                        let host = (0..hosts)
                            .filter(|&h| count[h] < capacity)
                            .min_by_key(|&h| (load[h], h))
                            .expect("capacity covers every service");
                        load[host] += fp;
                        count[host] += 1;
                        host
                    })
                    .collect()
            }
        }
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::LeastLoaded => "least-loaded",
        })
    }
}

/// Error parsing a [`PlacementPolicy`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlacementError {
    input: String,
}

impl fmt::Display for ParsePlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown placement policy {:?} (expected round-robin, packed, \
             or least-loaded)",
            self.input
        )
    }
}

impl std::error::Error for ParsePlacementError {}

impl FromStr for PlacementPolicy {
    type Err = ParsePlacementError;

    /// Parses `round-robin`, `packed`, or `least-loaded`
    /// (case-insensitive; `rr`, `roundrobin`, and `leastloaded` are
    /// accepted aliases).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(PlacementPolicy::RoundRobin),
            "packed" => Ok(PlacementPolicy::Packed),
            "least-loaded" | "leastloaded" => Ok(PlacementPolicy::LeastLoaded),
            _ => Err(ParsePlacementError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for p in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::Packed,
            PlacementPolicy::LeastLoaded,
        ] {
            assert_eq!(p.to_string().parse::<PlacementPolicy>(), Ok(p));
        }
        assert_eq!(
            "RR".parse::<PlacementPolicy>(),
            Ok(PlacementPolicy::RoundRobin)
        );
        assert!("spread".parse::<PlacementPolicy>().is_err());
    }

    #[test]
    fn round_robin_and_packed_differ_in_colocation() {
        let fp = [10, 10, 10, 10];
        assert_eq!(
            PlacementPolicy::RoundRobin.assign(&fp, 2, 2),
            vec![0, 1, 0, 1]
        );
        assert_eq!(PlacementPolicy::Packed.assign(&fp, 2, 2), vec![0, 0, 1, 1]);
    }

    #[test]
    fn least_loaded_balances_footprints_within_capacity() {
        // One giant service: the second host absorbs the small ones.
        let fp = [100, 1, 1, 1];
        let hosts = PlacementPolicy::LeastLoaded.assign(&fp, 2, 2);
        assert_eq!(hosts[0], 0);
        assert_eq!(hosts[1], 1);
        assert_eq!(hosts[2], 1);
        // Host 1 is at capacity (2 services), so the last one spills to
        // host 0 despite its load.
        assert_eq!(hosts[3], 0);
        for h in 0..2 {
            assert_eq!(hosts.iter().filter(|&&x| x == h).count(), 2);
        }
    }
}
