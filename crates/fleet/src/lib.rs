//! # sgx-fleet — fleet-scale serving simulation
//!
//! The paper evaluates a handful of enclaves on one machine; this crate
//! scales the same substrate to a serving fleet: `N` simulated hosts ×
//! `M` service enclaves each, an open-loop request [`ArrivalProcess`],
//! per-request working-set draws mapped onto the existing workload
//! generators, enclave lifecycle (cold-start billing from the EPC
//! [`StartupModel`], idle teardown, [`PlacementPolicy`] tenant placement,
//! optional plan-time migration under sustained EPC pressure), and
//! fleet-level outputs: SLO latency percentiles (p50/p95/p99/p99.9),
//! per-host EPC-pressure gauge series, and shed/violation counts.
//!
//! ## Determinism
//!
//! Planning (schedules, placement, migration) happens serially from
//! seeded [`DetRng`] streams; host `i` then runs with the positional
//! seed `mix(fleet_seed, i)` and no cross-host state, so sharding hosts
//! across the work-stealing pool ([`run_indexed`]) is bit-invisible:
//! [`FleetReport::to_canonical_json`] is byte-identical at any `--jobs`.
//!
//! [`StartupModel`]: sgx_epc::StartupModel
//! [`DetRng`]: sgx_sim::DetRng
//! [`run_indexed`]: sgx_preload_core::run_indexed
//!
//! # Examples
//!
//! ```
//! use sgx_fleet::{ArrivalProcess, FleetSpec};
//!
//! let report = FleetSpec::new(2, 2)
//!     .arrival(ArrivalProcess::Poisson { mean_gap: 8_192 })
//!     .duration(1 << 18)
//!     .build()?
//!     .run(1)?;
//! assert!(report.requests > 0);
//! assert_eq!(report.accounting_residual, 0);
//! # Ok::<(), sgx_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod host;
mod placement;
mod report;
mod spec;

use std::time::Instant;

use sgx_preload_core::run_indexed;
use sgx_sim::{mix, DetRng, Histogram};
use sgx_workloads::Benchmark;

use host::{HostPlan, Instance, PlannedRequest};

pub use arrival::{
    ArrivalProcess, ParseArrivalError, DEFAULT_BURST, DEFAULT_MEAN_GAP, DEFAULT_PERIOD_GAPS,
};
pub use placement::{ParsePlacementError, PlacementPolicy};
pub use report::{FleetReport, HostReport, LatencySummary};
pub use spec::{
    FleetError, FleetSpec, FleetSpecBuilder, DEFAULT_DURATION, DEFAULT_SHED_AFTER, DEFAULT_SLO,
    MAX_REQUESTS_PER_SERVICE,
};

/// The service catalog fleet instances cycle through (service `k` runs
/// `CATALOG[k % 4]`): one EPC-swamping program and three smaller ones,
/// so co-location pressure depends on placement.
pub const SERVICE_CATALOG: [Benchmark; 4] = [
    Benchmark::Microbenchmark,
    Benchmark::Leela,
    Benchmark::Nab,
    Benchmark::Exchange2,
];

/// Cap on the `EEXTEND`-measured initial image billed at spawn: larger
/// ELRANGEs are assumed to be heap, `EAUG`ed on demand and not measured
/// at build time.
pub const MEASURED_IMAGE_PAGES: u64 = 64;

/// Salt offset separating service seeds from positional host seeds.
const SERVICE_SALT: u64 = 1 << 32;

/// Epochs the migration planner slices the run into.
const MIGRATION_EPOCHS: u64 = 8;

/// Builds every host's plan serially: request schedules, working-set
/// draws, placement, and (when enabled) migration splits. Returns the
/// plans plus the number of migrations applied.
fn plan_fleet(spec: &FleetSpec) -> (Vec<HostPlan>, u64) {
    let total = spec.hosts * spec.enclaves_per_host;
    let mut services = Vec::with_capacity(total);
    for k in 0..total {
        let bench = SERVICE_CATALOG[k % SERVICE_CATALOG.len()];
        let elrange = bench.elrange_pages(spec.cfg.scale);
        let seed = mix(spec.seed, SERVICE_SALT + k as u64);
        let mut rng = DetRng::seed_from(mix(seed, 1));
        let mut requests = Vec::new();
        let mut t = 0u64;
        for i in 0..MAX_REQUESTS_PER_SERVICE {
            t = t.saturating_add(spec.arrival.next_gap(&mut rng, t, i));
            if t >= spec.duration {
                break;
            }
            // Working-set draw: a small base plus a geometric tail,
            // capped so one request stays bounded.
            let work = 8 + rng.geometric(1.0 / 24.0).min(248) as u32;
            requests.push(PlannedRequest { arrival: t, work });
        }
        services.push(Instance {
            bench,
            elrange,
            seed,
            requests,
            migrated_in: false,
        });
    }

    let footprints: Vec<u64> = services.iter().map(|s| s.elrange).collect();
    let assign = spec
        .placement
        .assign(&footprints, spec.hosts, spec.enclaves_per_host);
    let mut per_host: Vec<Vec<Instance>> = (0..spec.hosts).map(|_| Vec::new()).collect();
    for (inst, host) in services.into_iter().zip(assign) {
        per_host[host].push(inst);
    }

    let migrations = if spec.migrate {
        apply_migrations(spec, &mut per_host)
    } else {
        0
    };

    let plans = per_host
        .into_iter()
        .enumerate()
        .map(|(index, instances)| HostPlan {
            index,
            seed: mix(spec.seed, index as u64),
            instances,
        })
        .collect();
    (plans, migrations)
}

/// Plan-time migration: slices the run into [`MIGRATION_EPOCHS`] epochs,
/// estimates each host's EPC pressure per epoch (the summed ELRANGE of
/// services active in that epoch over the EPC size), and when a host
/// stays above the threshold for two consecutive epochs, moves its
/// largest pressured service's remaining requests to the least-loaded
/// other host at the epoch boundary. At most one migration per source
/// host; the moved instance re-pays its cold start on the target.
fn apply_migrations(spec: &FleetSpec, per_host: &mut [Vec<Instance>]) -> u64 {
    if per_host.len() < 2 {
        return 0;
    }
    let epoch_len = (spec.duration / MIGRATION_EPOCHS).max(1);
    let mut total_fp: Vec<u64> = per_host
        .iter()
        .map(|v| v.iter().map(|i| i.elrange).sum())
        .collect();
    let mut migrations = 0;
    for h in 0..per_host.len() {
        let mut consec = 0;
        let mut boundary = None;
        for e in 0..MIGRATION_EPOCHS {
            let lo = e * epoch_len;
            let hi = if e == MIGRATION_EPOCHS - 1 {
                u64::MAX
            } else {
                (e + 1) * epoch_len
            };
            let active: u64 = per_host[h]
                .iter()
                .filter(|inst| {
                    inst.requests
                        .iter()
                        .any(|r| r.arrival >= lo && r.arrival < hi)
                })
                .map(|inst| inst.elrange)
                .sum();
            if active as f64 / spec.cfg.epc_pages as f64 > spec.migrate_threshold {
                consec += 1;
            } else {
                consec = 0;
            }
            if consec >= 2 {
                boundary = Some(hi.min(spec.duration));
                break;
            }
        }
        let Some(boundary) = boundary else { continue };
        let candidate = per_host[h]
            .iter()
            .enumerate()
            .filter(|(_, inst)| {
                !inst.migrated_in && inst.requests.iter().any(|r| r.arrival >= boundary)
            })
            .max_by_key(|(i, inst)| (inst.elrange, usize::MAX - i))
            .map(|(i, _)| i);
        let Some(ci) = candidate else { continue };
        let target = (0..per_host.len())
            .filter(|&t| t != h)
            .min_by_key(|&t| (total_fp[t], t))
            .expect("at least two hosts");
        let src = &mut per_host[h][ci];
        let split_at = src.requests.partition_point(|r| r.arrival < boundary);
        let moved = src.requests.split_off(split_at);
        if moved.is_empty() {
            continue;
        }
        let inst = Instance {
            bench: src.bench,
            elrange: src.elrange,
            seed: mix(src.seed, 2),
            requests: moved,
            migrated_in: true,
        };
        total_fp[target] += inst.elrange;
        per_host[target].push(inst);
        migrations += 1;
    }
    migrations
}

impl FleetSpec {
    /// Runs the fleet on a `jobs`-worker work-stealing pool (hosts are
    /// the work items). Results are bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// [`FleetError::Host`] for the lowest-indexed host whose simulation
    /// failed.
    pub fn run(&self, jobs: usize) -> Result<FleetReport, FleetError> {
        let t0 = Instant::now();
        let (plans, migrations) = plan_fleet(self);
        let jobs = jobs.max(1);
        let results = run_indexed(plans.len(), jobs, |i| host::simulate_host(&plans[i], self));
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }

        let mut latency = Histogram::new("fleet_latency");
        let mut report = FleetReport {
            fleet_seed: self.seed,
            hosts: self.hosts,
            enclaves_per_host: self.enclaves_per_host,
            scheme: self.scheme,
            arrival: self.arrival,
            placement: self.placement,
            duration: self.duration,
            slo: self.slo,
            jobs,
            wall_nanos: 0,
            requests: 0,
            shed: 0,
            slo_violations: 0,
            spawns: 0,
            teardowns: 0,
            migrations,
            accesses: 0,
            faults: 0,
            demand_loads: 0,
            preloads_started: 0,
            preloads_touched: 0,
            preloads_wasted: 0,
            startup_cycles: 0,
            total_cycles: 0,
            accounting_residual: 0,
            latency: LatencySummary::default(),
            host_reports: Vec::with_capacity(outcomes.len()),
        };
        for o in &outcomes {
            latency.merge(&o.latency);
            report.requests += o.requests;
            report.shed += o.shed;
            report.slo_violations += o.violations;
            report.spawns += o.spawns;
            report.teardowns += o.teardowns;
            report.accesses += o.accesses;
            report.faults += o.faults;
            report.demand_loads += o.demand_loads;
            report.preloads_started += o.preloads_started;
            report.preloads_touched += o.preloads_touched;
            report.preloads_wasted += o.preloads_wasted;
            report.startup_cycles += o.startup_cycles;
            report.total_cycles += o.end_cycles;
            report.accounting_residual += o.accounting_residual;
            report.host_reports.push(HostReport::from_outcome(o));
        }
        report.latency = LatencySummary::from_histogram(&latency);
        report.wall_nanos = t0.elapsed().as_nanos() as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        FleetSpec::new(3, 2)
            .arrival(ArrivalProcess::Poisson { mean_gap: 8_192 })
            .duration(1 << 18)
            .build()
            .unwrap()
    }

    #[test]
    fn serial_and_parallel_runs_are_byte_identical() {
        let spec = tiny_spec();
        let a = spec.run(1).unwrap();
        let b = spec.run(4).unwrap();
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        assert_eq!(a.jobs, 1);
        assert_eq!(b.jobs, 4);
    }

    #[test]
    fn books_balance_and_hosts_sum_to_the_fleet() {
        let r = tiny_spec().run(2).unwrap();
        assert_eq!(r.accounting_residual, 0);
        assert_eq!(
            r.total_cycles,
            r.host_reports.iter().map(|h| h.end_cycles).sum::<u64>()
        );
        assert_eq!(
            r.requests,
            r.host_reports.iter().map(|h| h.requests).sum::<u64>()
        );
        for h in &r.host_reports {
            assert_eq!(h.attribution.total(), h.end_cycles, "host {}", h.index);
        }
        // Every service spawned at least once.
        assert_eq!(r.spawns, (r.hosts * r.enclaves_per_host) as u64);
    }

    #[test]
    fn idle_timeout_bills_teardowns_and_respawns() {
        // Sparse arrivals leave long idle gaps once the cold-start
        // backlog drains, so a modest timeout reaps idle services.
        let base = FleetSpec::new(1, 2)
            .arrival(ArrivalProcess::Poisson { mean_gap: 200_000 })
            .duration(1 << 23);
        let without = base.clone().build().unwrap().run(1).unwrap();
        let with = base.idle_timeout(50_000).build().unwrap().run(1).unwrap();
        assert_eq!(without.teardowns, 0);
        assert!(with.teardowns > 0);
        assert!(with.spawns > without.spawns);
        assert!(with.startup_cycles > without.startup_cycles);
    }

    #[test]
    fn migration_splits_pressured_hosts() {
        // Packed placement puts the EPC-swamping microbenchmark services
        // together; migration must move one off.
        let spec = FleetSpec::new(2, 4)
            .arrival(ArrivalProcess::Poisson { mean_gap: 8_192 })
            .placement(PlacementPolicy::Packed)
            .migrate(true)
            .duration(1 << 18)
            .build()
            .unwrap();
        let (plans, migrations) = plan_fleet(&spec);
        assert!(migrations > 0);
        let instance_count: usize = plans.iter().map(|p| p.instances.len()).sum();
        assert_eq!(
            instance_count,
            spec.hosts * spec.enclaves_per_host + migrations as usize
        );
        // Requests are conserved across the split.
        let baseline = plan_fleet(
            &FleetSpec::new(2, 4)
                .arrival(ArrivalProcess::Poisson { mean_gap: 8_192 })
                .placement(PlacementPolicy::Packed)
                .duration(1 << 18)
                .build()
                .unwrap(),
        );
        let planned: usize = plans
            .iter()
            .flat_map(|p| &p.instances)
            .map(|i| i.requests.len())
            .sum();
        let unmigrated: usize = baseline
            .0
            .iter()
            .flat_map(|p| &p.instances)
            .map(|i| i.requests.len())
            .sum();
        assert_eq!(planned, unmigrated);
        // And the migrated fleet still runs clean.
        let r = spec.run(2).unwrap();
        assert_eq!(r.migrations, migrations);
        assert_eq!(r.accounting_residual, 0);
    }

    #[test]
    fn shedding_engages_under_overload() {
        // A brutal arrival rate against one host: queue waits explode and
        // the shed valve must engage.
        let r = FleetSpec::new(1, 4)
            .arrival(ArrivalProcess::Poisson { mean_gap: 64 })
            .duration(1 << 18)
            .shed_after(100_000)
            .build()
            .unwrap()
            .run(1)
            .unwrap();
        assert!(r.shed > 0);
        assert_eq!(r.latency.count, r.requests - r.shed);
    }
}
