//! One simulated host: a kernel + EPC shared by the service enclaves the
//! plan assigned here, driven by their precomputed request schedules.
//!
//! Hosts are fully independent given the plan — every random draw
//! happened in the serial planning phase or comes from per-service
//! streams forked off the host-local plan — so sharding hosts across
//! workers cannot change any result bit.

use sgx_dfp::ProcessId;
use sgx_epc::StartupModel;
use sgx_kernel::{CycleAttribution, FaultServicing, SeriesFormat, TimeSeriesSink};
use sgx_preload_core::build_kernel;
use sgx_sim::{Cycles, Histogram};
use sgx_workloads::{AccessIter, Benchmark, InputSet};

use crate::spec::FleetSpec;
use crate::FleetError;

/// One planned request: when it arrives and how many accesses it costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlannedRequest {
    /// Arrival instant in cycles.
    pub arrival: u64,
    /// Working-set draw: accesses the request executes.
    pub work: u32,
}

/// One service enclave instance on a host.
#[derive(Debug, Clone)]
pub(crate) struct Instance {
    /// The service's workload generator.
    pub bench: Benchmark,
    /// ELRANGE in pages (also the cold-start measurement size).
    pub elrange: u64,
    /// Seed of the service's access stream.
    pub seed: u64,
    /// The precomputed request schedule, arrival-ordered.
    pub requests: Vec<PlannedRequest>,
    /// True when this instance was created by a plan-time migration.
    pub migrated_in: bool,
}

/// Everything a worker needs to simulate one host.
#[derive(Debug, Clone)]
pub(crate) struct HostPlan {
    /// Host index in the fleet.
    pub index: usize,
    /// Positional host seed: `mix(fleet_seed, index)`.
    pub seed: u64,
    /// The service instances placed here.
    pub instances: Vec<Instance>,
}

/// Per-host simulation results, merged by the fleet aggregator.
#[derive(Debug, Clone)]
pub(crate) struct HostOutcome {
    pub index: usize,
    pub seed: u64,
    pub services: usize,
    pub end_cycles: u64,
    pub requests: u64,
    pub shed: u64,
    pub violations: u64,
    pub spawns: u64,
    pub teardowns: u64,
    pub migrations_in: u64,
    pub accesses: u64,
    pub epc_hits: u64,
    pub driver_faults: u64,
    pub faults: u64,
    pub demand_loads: u64,
    pub preloads_started: u64,
    pub preloads_touched: u64,
    pub preloads_wasted: u64,
    pub startup_cycles: u64,
    pub latency: Histogram,
    pub attribution: CycleAttribution,
    /// `|sum(attribution buckets) - end_cycles| + |driver faults -
    /// kernel-counted faults|`; zero whenever the books balance.
    pub accounting_residual: u64,
}

struct SvcState {
    pid: ProcessId,
    bench: Benchmark,
    seed: u64,
    stream: AccessIter,
    wraps: u64,
    req_idx: usize,
    busy_left: u32,
    arrival_of_current: u64,
    now: Cycles,
    spawned: bool,
    last_done: Cycles,
    done: bool,
}

impl SvcState {
    /// The instant this service can next make progress, or `None` when it
    /// has drained its schedule.
    fn ready_at(&self, requests: &[PlannedRequest]) -> Option<Cycles> {
        if self.done {
            return None;
        }
        if self.busy_left > 0 {
            return Some(self.now);
        }
        requests
            .get(self.req_idx)
            .map(|r| self.now.max(Cycles::new(r.arrival)))
    }

    /// Pulls the next access, restarting the stream (with a forked seed)
    /// when the generator runs dry — a resident serving process loops its
    /// program.
    fn next_access(&mut self, scale: sgx_workloads::Scale) -> sgx_workloads::Access {
        loop {
            if let Some(a) = self.stream.next() {
                return a;
            }
            self.wraps += 1;
            self.stream = self.bench.build(
                InputSet::Ref,
                scale,
                sgx_sim::mix(self.seed, 16 + self.wraps),
            );
        }
    }
}

/// Simulates one host to completion.
pub(crate) fn simulate_host(plan: &HostPlan, spec: &FleetSpec) -> Result<HostOutcome, FleetError> {
    let host_err = |source| FleetError::Host {
        host: plan.index,
        source,
    };
    let mut cfg = spec.cfg.with_seed(plan.seed);
    if spec.series_dir.is_some() && cfg.series_interval == 0 {
        cfg = cfg.with_series_interval(sgx_preload_core::DEFAULT_TIMELINE_SERIES_INTERVAL);
    }
    let mut kernel = build_kernel(&cfg, spec.scheme).map_err(|e| host_err(e.into()))?;
    if let Some(dir) = &spec.series_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create series dir {}: {e}", dir.display());
        } else {
            let path = dir.join(format!("host_{:03}.series.csv", plan.index));
            match TimeSeriesSink::create(&path, SeriesFormat::Csv) {
                Ok(sink) => kernel.subscribe(Box::new(sink)),
                Err(e) => eprintln!(
                    "warning: host {} has no gauge series: {}: {e}",
                    plan.index,
                    path.display()
                ),
            }
        }
    }

    let startup = StartupModel::defaults();
    let mut states = Vec::with_capacity(plan.instances.len());
    for (i, inst) in plan.instances.iter().enumerate() {
        let pid = ProcessId(i as u32);
        kernel
            .register_enclave(pid, inst.elrange)
            .map_err(|e| host_err(e.into()))?;
        states.push(SvcState {
            pid,
            bench: inst.bench,
            seed: inst.seed,
            stream: inst.bench.build(InputSet::Ref, cfg.scale, inst.seed),
            wraps: 0,
            req_idx: 0,
            busy_left: 0,
            arrival_of_current: 0,
            now: Cycles::ZERO,
            spawned: false,
            last_done: Cycles::ZERO,
            done: false,
        });
    }

    let mut out = HostOutcome {
        index: plan.index,
        seed: plan.seed,
        services: plan.instances.len(),
        end_cycles: 0,
        requests: 0,
        shed: 0,
        violations: 0,
        spawns: 0,
        teardowns: 0,
        migrations_in: plan.instances.iter().filter(|i| i.migrated_in).count() as u64,
        accesses: 0,
        epc_hits: 0,
        driver_faults: 0,
        faults: 0,
        demand_loads: 0,
        preloads_started: 0,
        preloads_touched: 0,
        preloads_wasted: 0,
        startup_cycles: 0,
        latency: Histogram::new("fleet_request_latency"),
        attribution: CycleAttribution::default(),
        accounting_residual: 0,
    };

    // Min-clock round-robin across services, the same near-monotonic
    // interleaving the single-machine driver uses: always advance the
    // service whose next event is earliest.
    loop {
        let next = states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.ready_at(&plan.instances[i].requests).map(|t| (t, i)))
            .min()
            .map(|(_, i)| i);
        let Some(i) = next else { break };
        let st = &mut states[i];
        if st.busy_left > 0 {
            // Execute one access of the current request.
            let access = st.next_access(cfg.scale);
            st.now += access.compute;
            out.accesses += 1;
            match kernel.app_access(st.now, st.pid, access.page) {
                Some(_) => out.epc_hits += 1,
                None => {
                    let r = kernel.page_fault(st.now, st.pid, access.page);
                    out.driver_faults += 1;
                    match r.kind {
                        FaultServicing::WaitedForInflight
                        | FaultServicing::FoundResident
                        | FaultServicing::DemandLoaded => {}
                    }
                    st.now = r.resume_at;
                }
            }
            st.busy_left -= 1;
            if st.busy_left == 0 {
                let latency = st.now.saturating_sub(Cycles::new(st.arrival_of_current));
                out.latency.record(latency);
                if latency.raw() > spec.slo {
                    out.violations += 1;
                }
                st.last_done = st.now;
            }
            continue;
        }

        // Start (or shed) the next request.
        let req = plan.instances[i].requests[st.req_idx];
        st.req_idx += 1;
        out.requests += 1;
        let arrival = Cycles::new(req.arrival);

        // Idle teardown: the gap since the last completion exceeded the
        // timeout, so the enclave was reaped (EREMOVE — no write-back
        // billed) and this request re-pays the cold start below.
        if st.spawned
            && spec.idle_timeout > 0
            && req.arrival > st.last_done.raw().saturating_add(spec.idle_timeout)
        {
            kernel
                .retire_enclave(st.pid)
                .map_err(|e| host_err(e.into()))?;
            out.teardowns += 1;
            st.spawned = false;
        }

        // Queue wait (excluding any cold start this request itself
        // triggers): overload protection drops stale requests before
        // they execute.
        let start = st.now.max(arrival);
        let wait = start.saturating_sub(arrival);
        if spec.shed_after > 0 && wait.raw() > spec.shed_after {
            out.shed += 1;
            if st.req_idx >= plan.instances[i].requests.len() {
                st.done = true;
            }
            continue;
        }

        let mut start = start;
        if !st.spawned {
            let build = startup.build_time(
                plan.instances[i].elrange.min(crate::MEASURED_IMAGE_PAGES),
                0,
            );
            start += build;
            out.startup_cycles += build.raw();
            out.spawns += 1;
            st.spawned = true;
        }
        st.now = start;
        st.arrival_of_current = req.arrival;
        st.busy_left = req.work.max(1);
    }

    let end = states.iter().map(|s| s.now).max().unwrap_or(Cycles::ZERO);
    kernel.finish(end);
    let ks = kernel.stats().clone();
    let epc = kernel.epc();
    out.end_cycles = end.raw();
    out.faults = ks.faults;
    out.demand_loads = ks.demand_loads;
    out.preloads_started = ks.preloads_started;
    out.preloads_touched = epc.preloads_touched();
    out.preloads_wasted = epc.preloads_evicted_untouched();
    out.attribution = kernel.attribution(end);
    out.accounting_residual =
        out.attribution.total().abs_diff(out.end_cycles) + out.driver_faults.abs_diff(out.faults);
    Ok(out)
}
