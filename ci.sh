#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
# Our packages only: the vendored registry stand-ins don't doc cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p sgx-preloading -p sgx-preload-core -p sgx-bench -p sgx-kernel \
  -p sgx-epc -p sgx-dfp -p sgx-sip -p sgx-workloads -p sgx-sim

echo "==> cargo build --release"
cargo build --release

echo "==> chaos smoke"
# The fault-injection layer's graceful-degradation contract, end to end:
# the release CLI must hold the invariants under the heavy preset.
./target/release/sgx-preload chaos --bench microbenchmark --scheme dfp \
  --scale 48 --preset heavy --chaos-seed 5 --max-slowdown 3.0 >/dev/null

echo "==> contention campaign"
# The small multi-tenant contention campaign: victim solo, then co-run
# under the fair 1:1 policy. Seeds the perf trajectory with wall-clock
# and per-enclave cycle totals.
mkdir -p results
./target/release/sgx-preload contend --scale 32 --scheme dfp \
  --json-out results/BENCH_contention.json >/dev/null

echo "==> timeline smoke"
# The causal-span pipeline end to end: the release CLI replays a run with
# span lineage, checks the invariants (parents resolve, one terminal
# run-end, attribution buckets sum to the total), and writes the chrome
# trace + gauge series + summary JSON with wall-clock and span counts.
mkdir -p results
./target/release/sgx-preload timeline --bench microbenchmark --scheme dfp \
  --scale 48 -n 0 --attr \
  --chrome-out results/BENCH_timeline.chrome.json \
  --series-out results/BENCH_timeline.series.csv \
  --json-out results/BENCH_timeline.json >/dev/null
# The exported chrome trace must be valid JSON and the summary must report
# a reconciled attribution with zero violations.
python3 - <<'EOF'
import json
with open("results/BENCH_timeline.chrome.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "empty chrome trace"
with open("results/BENCH_timeline.json") as f:
    summary = json.load(f)
assert summary["reconciles"] is True, summary
assert summary["violations"] == [], summary
assert summary["run_ends"] == 1, summary
attr = summary["attribution"]
assert sum(attr.values()) == summary["total_cycles"], attr
print(f"timeline OK: {summary['events']} events, {summary['spans']} spans, "
      f"{len(trace['traceEvents'])} chrome entries")
EOF

echo "==> throughput"
# The hot-path engine's headline number: wall-clock events/sec on the
# timeline microbenchmark cell (Chrome-trace sink attached). The stage
# fails if the engine falls back under 10x the pre-rewrite baseline.
mkdir -p results
./target/release/sgx-preload throughput --bench microbenchmark --scheme dfp \
  --scale 48 --iters 5 --json-out results/BENCH_throughput.json
python3 - <<'EOF'
import json
with open("results/BENCH_throughput.json") as f:
    t = json.load(f)
assert t["events"] > 0 and t["pages"] > 0, t
floor = 10.0 * t["baseline_events_per_sec"]
assert t["events_per_sec"] >= floor, (
    f"throughput regression: {t['events_per_sec']:.0f} events/sec is below "
    f"10x the pre-rewrite baseline ({floor:.0f})")
print(f"throughput OK: {t['events_per_sec']:.0f} events/sec "
      f"({t['speedup_vs_baseline']:.1f}x baseline), "
      f"{t['simulated_pages_per_sec']:.0f} simulated-pages/sec")
EOF

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI OK"
