#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
# Our packages only: the vendored registry stand-ins don't doc cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p sgx-preloading -p sgx-preload-core -p sgx-fleet -p sgx-bench \
  -p sgx-kernel -p sgx-epc -p sgx-dfp -p sgx-sip -p sgx-workloads \
  -p sgx-observer -p sgx-sim

echo "==> cargo build --release"
cargo build --release

echo "==> chaos smoke"
# The fault-injection layer's graceful-degradation contract, end to end:
# the release CLI must hold the invariants under the heavy preset.
./target/release/sgx-preload chaos --bench microbenchmark --scheme dfp \
  --scale 48 --preset heavy --chaos-seed 5 --max-slowdown 3.0 >/dev/null

echo "==> contention campaign"
# The small multi-tenant contention campaign: victim solo, then co-run
# under the fair 1:1 policy. Seeds the perf trajectory with wall-clock
# and per-enclave cycle totals.
mkdir -p results
./target/release/sgx-preload contend --scale 32 --scheme dfp \
  --json-out results/BENCH_contention.json >/dev/null

echo "==> timeline smoke"
# The causal-span pipeline end to end: the release CLI replays a run with
# span lineage, checks the invariants (parents resolve, one terminal
# run-end, attribution buckets sum to the total), and writes the chrome
# trace + gauge series + summary JSON with wall-clock and span counts.
mkdir -p results
./target/release/sgx-preload timeline --bench microbenchmark --scheme dfp \
  --scale 48 -n 0 --attr \
  --chrome-out results/BENCH_timeline.chrome.json \
  --series-out results/BENCH_timeline.series.csv \
  --json-out results/BENCH_timeline.json >/dev/null
# The exported chrome trace must be valid JSON and the summary must report
# a reconciled attribution with zero violations.
python3 - <<'EOF'
import json
with open("results/BENCH_timeline.chrome.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "empty chrome trace"
with open("results/BENCH_timeline.json") as f:
    summary = json.load(f)
assert summary["reconciles"] is True, summary
assert summary["violations"] == [], summary
assert summary["run_ends"] == 1, summary
attr = summary["attribution"]
assert sum(attr.values()) == summary["total_cycles"], attr
print(f"timeline OK: {summary['events']} events, {summary['spans']} spans, "
      f"{len(trace['traceEvents'])} chrome entries")
EOF

echo "==> throughput"
# The hot-path engine's headline number: wall-clock events/sec on the
# timeline microbenchmark cell (Chrome-trace sink attached). The stage
# fails if the engine falls back under 10x the pre-rewrite baseline.
mkdir -p results
./target/release/sgx-preload throughput --bench microbenchmark --scheme dfp \
  --scale 48 --iters 5 --json-out results/BENCH_throughput.json
python3 - <<'EOF'
import json
with open("results/BENCH_throughput.json") as f:
    t = json.load(f)
assert t["events"] > 0 and t["pages"] > 0, t
floor = 10.0 * t["baseline_events_per_sec"]
assert t["events_per_sec"] >= floor, (
    f"throughput regression: {t['events_per_sec']:.0f} events/sec is below "
    f"10x the pre-rewrite baseline ({floor:.0f})")
print(f"throughput OK: {t['events_per_sec']:.0f} events/sec "
      f"({t['speedup_vs_baseline']:.1f}x baseline), "
      f"{t['simulated_pages_per_sec']:.0f} simulated-pages/sec")
EOF

echo "==> fleet smoke"
# The fleet simulator end to end: the golden 4x3 fleet must produce
# byte-identical canonical JSON at --jobs 1 and --jobs 4, match the
# pinned golden, and balance its books (zero accounting residual).
# Writes wall-clock hosts/sec, requests/sec and p99 SLO latency.
mkdir -p results
FLEET_FLAGS=(--hosts 4 --enclaves 3 --fleet-seed 2020 --scale 64
  --arrival bursty:262144x4 --placement least-loaded
  --duration 8388608 --idle-timeout 1048576)
./target/release/sgx-preload fleet "${FLEET_FLAGS[@]}" --jobs 1 \
  --json-out results/fleet_j1.json >/dev/null
./target/release/sgx-preload fleet "${FLEET_FLAGS[@]}" --jobs 4 \
  --json-out results/fleet_j4.json \
  --bench-out results/BENCH_fleet.json >/dev/null
cmp results/fleet_j1.json results/fleet_j4.json
python3 - <<'EOF'
import json
with open("results/fleet_j4.json") as f:
    fleet = json.load(f)
with open("tests/golden/fleet_small.json") as f:
    golden = json.load(f)
assert fleet == golden, "fleet report drifted from tests/golden/fleet_small.json"
assert fleet["accounting_residual"] == 0, fleet["accounting_residual"]
assert fleet["total_cycles"] == sum(h["end_cycles"] for h in fleet["host_reports"])
with open("results/BENCH_fleet.json") as f:
    bench = json.load(f)
assert bench["requests"] == fleet["requests"], bench
assert bench["accounting_residual"] == 0, bench
print(f"fleet OK: {bench['hosts_per_sec']:.0f} hosts/sec, "
      f"{bench['requests_per_sec']:.0f} requests/sec, "
      f"p99 latency {bench['p99_latency_cycles']} cycles "
      f"(SLO {fleet['slo']}, {fleet['slo_violations']} violations, "
      f"{fleet['shed']} shed)")
EOF

echo "==> trace record/convert/replay"
# The compact binary trace format end to end: record a small trace,
# convert .sgxt -> CSV -> .sgxt (must be byte-identical), replay it with
# the source benchmark declared and --diff (the replayed report must
# match the generator run exactly), and write replayed-pages/sec and
# round-trip bytes/access. Then the four workload-diversity families run
# their full scheme grid against the pinned golden.
mkdir -p results
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
./target/release/sgx-preload trace record --bench kvstore --scale 32 \
  --out "$TRACE_DIR/kv.sgxt" >/dev/null
./target/release/sgx-preload trace convert --in "$TRACE_DIR/kv.sgxt" \
  --out "$TRACE_DIR/kv.csv" >/dev/null
./target/release/sgx-preload trace convert --in "$TRACE_DIR/kv.csv" \
  --out "$TRACE_DIR/kv2.sgxt" >/dev/null
cmp "$TRACE_DIR/kv.sgxt" "$TRACE_DIR/kv2.sgxt"
./target/release/sgx-preload trace replay --trace "$TRACE_DIR/kv.sgxt" \
  --scale 32 --scheme hybrid --source-bench kvstore --diff \
  --bench-out results/BENCH_trace_replay.json >/dev/null
./target/release/sgx-preload campaign --scale 32 \
  --benches kvstore,phase-shift,graph-frontier,ml-inference \
  --json-out "$TRACE_DIR/diverse.json" >/dev/null
python3 - <<'EOF'
import json
with open("results/BENCH_trace_replay.json") as f:
    t = json.load(f)
assert t["accesses"] > 0 and t["trace_bytes"] > 0, t
assert t["replayed_pages_per_sec"] > 0, t
# The binary format must beat CSV's ~14 bytes/access comfortably.
assert t["bytes_per_access"] < 8.0, t
print(f"trace replay OK: {t['accesses']} accesses, "
      f"{t['replayed_pages_per_sec']:.0f} replayed-pages/sec, "
      f"{t['bytes_per_access']:.2f} bytes/access")
EOF
python3 - "$TRACE_DIR/diverse.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
cells = report["cells"]
assert len(cells) == 20, f"expected 4 families x 5 schemes, got {len(cells)}"
families = {c["label"].split("/")[0] for c in cells}
assert families == {"kvstore", "phase-shift", "graph-frontier", "ml-inference"}
print(f"diverse campaign OK: {len(cells)} cells over {sorted(families)}")
EOF

echo "==> predictor zoo ablation"
# The predictor-zoo ablation: every shipped predictor drives the diverse
# campaign over the baseline/DFP-stop/EDMM scheme axes. Each predictor's
# report must be identical at --jobs 1 and --jobs 4 modulo timing
# context; the stage aggregates cells/sec and per-predictor demand-fault
# totals into results/BENCH_predictor_zoo.json.
mkdir -p results
for p in multi-stream next-line stride stride-confident markov leap; do
  for j in 1 4; do
    ./target/release/sgx-preload campaign --scale 32 \
      --benches kvstore,phase-shift,graph-frontier,ml-inference \
      --schemes baseline,dfp-stop,edmm,edmm+dfp-stop \
      --predictor "$p" --jobs "$j" \
      --json-out "$TRACE_DIR/zoo_${p}_j${j}.json" >/dev/null
  done
done
python3 - "$TRACE_DIR" <<'EOF'
import json, sys

trace_dir = sys.argv[1]
predictors = ["multi-stream", "next-line", "stride",
              "stride-confident", "markov", "leap"]

def canonical(path):
    """The report with the timing context (jobs, wall clocks) removed."""
    with open(path) as f:
        report = json.load(f)
    report.pop("jobs", None)
    report.pop("wall_nanos", None)
    for cell in report["cells"]:
        cell.pop("wall_nanos", None)
    return report

zoo, cells_total, wall_total = {}, 0, 0
for p in predictors:
    j1 = canonical(f"{trace_dir}/zoo_{p}_j1.json")
    j4 = canonical(f"{trace_dir}/zoo_{p}_j4.json")
    assert j1 == j4, f"{p}: --jobs 1 and --jobs 4 reports diverged"
    with open(f"{trace_dir}/zoo_{p}_j4.json") as f:
        timed = json.load(f)
    cells = j4["cells"]
    assert cells, f"{p}: empty campaign"
    cells_total += len(cells)
    wall_total += timed["wall_nanos"]
    zoo[p] = {
        "cells": len(cells),
        "demand_faults": sum(c["report"]["faults"] for c in cells),
        "preloads_touched": sum(c["report"]["preloads_touched"] for c in cells),
        "total_cycles": sum(c["report"]["total_cycles"] for c in cells),
    }
bench = {
    "predictors": zoo,
    "cells": cells_total,
    "cells_per_sec": cells_total / (wall_total / 1e9),
}
assert bench["predictors"] and bench["cells"] > 0, bench
with open("results/BENCH_predictor_zoo.json", "w") as f:
    json.dump(bench, f, indent=2, sort_keys=True)
faults = {p: z["demand_faults"] for p, z in zoo.items()}
print(f"predictor zoo OK: {cells_total} cells at "
      f"{bench['cells_per_sec']:.1f} cells/sec; demand faults {faults}")
EOF

echo "==> leakage observatory"
# The untrusted-OS leakage grid: all three secret pairs under the
# baseline/DFP/SIP panel plus the per-pair ORAM reference rows. The
# canonical JSON must be byte-identical at --jobs 1 and --jobs 4 and
# match the pinned golden cell-for-cell. The gate is EXPECTED to fire
# (exit 1) on this panel: plain DFP amplifies the dfp-echo pair beyond
# the tolerance — that demonstrated amplification is the stage's point.
mkdir -p results
LEAK_FLAGS=(--scale 64 --campaign-seed 2020 --window 64)
set +e
./target/release/sgx-preload leakage "${LEAK_FLAGS[@]}" --jobs 1 \
  --json-out results/leakage_j1.json >/dev/null 2>&1
leak_j1=$?
./target/release/sgx-preload leakage "${LEAK_FLAGS[@]}" --jobs 4 \
  --json-out results/leakage_j4.json \
  --bench-out results/BENCH_leakage.json >/dev/null 2>&1
leak_j4=$?
set -e
if [ "$leak_j1" -ne 1 ] || [ "$leak_j4" -ne 1 ]; then
  echo "leakage gate was expected to fire (DFP amplifies dfp-echo);" \
       "got exit $leak_j1 (jobs 1) / $leak_j4 (jobs 4)"
  exit 1
fi
cmp results/leakage_j1.json results/leakage_j4.json
python3 - <<'EOF'
import json
with open("results/leakage_j4.json") as f:
    got = json.load(f)
with open("tests/golden/campaign_leakage.json") as f:
    want = json.load(f)
assert got["campaign_seed"] == want["campaign_seed"], got["campaign_seed"]
assert got["cells"] == want["cells"], \
    "leakage grid drifted from tests/golden/campaign_leakage.json"
with open("results/BENCH_leakage.json") as f:
    bench = json.load(f)
assert bench["cells"] == len(got["cells"]), bench
assert bench["obs_events"] > 0 and bench["obs_events_per_sec"] > 0, bench
rows = {r["label"]: r for r in bench["rows"]}
oram = [r for r in bench["rows"] if r["label"].endswith("/oram")]
assert len(oram) == 3, oram
assert all(r["distinguishability"] == 0 for r in oram), oram
# The two directional claims the observatory exists to show.
assert rows["branch-halves/SIP"]["fault_edit"] == 0.0, rows["branch-halves/SIP"]
assert rows["branch-halves/baseline"]["fault_edit"] > 0.5, \
    rows["branch-halves/baseline"]
assert rows["dfp-echo/DFP"]["distinguishability"] > \
    rows["dfp-echo/baseline"]["distinguishability"], rows["dfp-echo/DFP"]
print(f"leakage OK: {bench['cells']} cells, "
      f"{bench['obs_events']} observed events at "
      f"{bench['obs_events_per_sec']:.0f} events/sec; "
      f"SIP masks branch-halves, DFP amplifies dfp-echo, ORAM rows at 0")
EOF

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI OK"
