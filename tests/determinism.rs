//! Reproducibility guarantees: the simulation is a pure function of
//! (benchmark, scheme, config, seed).

use sgx_preloading::prelude::*;

#[test]
fn every_scheme_is_bit_reproducible() {
    let cfg = SimConfig::at_scale(Scale::DEV);
    for bench in [Benchmark::Deepsjeng, Benchmark::Lbm, Benchmark::MixedBlood] {
        for scheme in Scheme::ALL {
            let a = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            let b = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            assert_eq!(
                a.total_cycles, b.total_cycles,
                "{bench}/{scheme}: cycles diverged"
            );
            assert_eq!(a.faults, b.faults, "{bench}/{scheme}: faults diverged");
            assert_eq!(
                a.preloads_started, b.preloads_started,
                "{bench}/{scheme}: preloads diverged"
            );
            assert_eq!(
                a.sip_notifies, b.sip_notifies,
                "{bench}/{scheme}: notifies diverged"
            );
        }
    }
}

#[test]
fn seeds_change_random_workloads_but_not_deterministic_ones() {
    let a = SimConfig::at_scale(Scale::DEV).with_seed(1);
    let b = SimConfig::at_scale(Scale::DEV).with_seed(2);
    // deepsjeng is stochastic: different seeds, different traces.
    let d1 = SimRun::new(&a)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Deepsjeng)
        .run_one()
        .unwrap();
    let d2 = SimRun::new(&b)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Deepsjeng)
        .run_one()
        .unwrap();
    assert_ne!(d1.total_cycles, d2.total_cycles);
    // The microbenchmark is a pure sequential scan: seed-independent.
    let m1 = SimRun::new(&a)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Microbenchmark)
        .run_one()
        .unwrap();
    let m2 = SimRun::new(&b)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Microbenchmark)
        .run_one()
        .unwrap();
    assert_eq!(m1.total_cycles, m2.total_cycles);
}

#[test]
fn conclusions_are_stable_across_seeds() {
    // The paper averages five runs; here we check the *sign* of each
    // headline result across five seeds.
    for seed in 0..5 {
        let cfg = SimConfig::at_scale(Scale::DEV).with_seed(seed);
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(Benchmark::Deepsjeng)
            .run_one()
            .unwrap();
        let sip = SimRun::new(&cfg)
            .scheme(Scheme::Sip)
            .bench(Benchmark::Deepsjeng)
            .run_one()
            .unwrap();
        assert!(
            sip.improvement_over(&base) > 0.03,
            "seed {seed}: deepsjeng SIP gain vanished"
        );

        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(Benchmark::Lbm)
            .run_one()
            .unwrap();
        let dfp = SimRun::new(&cfg)
            .scheme(Scheme::Dfp)
            .bench(Benchmark::Lbm)
            .run_one()
            .unwrap();
        assert!(
            dfp.improvement_over(&base) > 0.08,
            "seed {seed}: lbm DFP gain vanished"
        );
    }
}

#[test]
fn scale_changes_size_not_story() {
    for scale in [Scale::DEV, Scale::new(8)] {
        let cfg = SimConfig::at_scale(scale);
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(Benchmark::Microbenchmark)
            .run_one()
            .unwrap();
        let dfp = SimRun::new(&cfg)
            .scheme(Scheme::Dfp)
            .bench(Benchmark::Microbenchmark)
            .run_one()
            .unwrap();
        let gain = dfp.improvement_over(&base);
        assert!(
            (0.10..0.25).contains(&gain),
            "scale 1/{}: DFP gain {gain:.3} drifted",
            scale.divisor()
        );
    }
}
