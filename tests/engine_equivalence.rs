//! Differential equivalence battery for the hot-path engine rewrite.
//!
//! The rewritten inner loop (struct-of-arrays page tables, word-at-a-time
//! CLOCK scans, slab/arena buffers, event batching, the no-sink fast
//! path) is pinned by the goldens that predate it: every campaign cell
//! must render byte-identically to the checked-in reports, serially and
//! under a worker pool. Unlike the per-suite golden harnesses, this
//! battery never regenerates — a mismatch here means the engine no
//! longer computes the pre-rewrite bits, full stop.

use std::path::PathBuf;

use sgx_preloading::prelude::*;
use sgx_preloading::{render_chrome_trace, CollectingSink};

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {} must exist ({e})", path.display()))
}

/// The exact campaign `tests/golden/campaign_small.json` pins.
fn small_campaign() -> Campaign {
    Campaign::grid(
        "golden_small",
        2020,
        &[Benchmark::Microbenchmark, Benchmark::Deepsjeng],
        &[Scheme::Baseline, Scheme::DfpStop, Scheme::Sip],
        SimConfig::at_scale(Scale::new(64)),
    )
}

/// The exact campaign `tests/golden/campaign_chaos_small.json` pins.
fn small_chaos_campaign() -> Campaign {
    Campaign::chaos_grid(
        "chaos_small",
        2021,
        &[Benchmark::Microbenchmark, Benchmark::Deepsjeng],
        &[Scheme::Dfp, Scheme::DfpStop],
        SimConfig::at_scale(Scale::new(64)),
        &[
            ("none", ChaosSchedule::none()),
            ("light", ChaosSchedule::light(9)),
            ("heavy", ChaosSchedule::heavy(9)),
        ],
    )
}

#[test]
fn campaign_golden_bits_survive_the_rewrite_at_jobs_1_and_4() {
    let want = golden("campaign_small.json");
    let campaign = small_campaign();
    for jobs in [1, 4] {
        assert_eq!(
            campaign
                .run_with_jobs(jobs)
                .expect("campaign run failed")
                .to_canonical_json(),
            want,
            "campaign_small.json diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn chaos_campaign_golden_bits_survive_the_rewrite_at_jobs_1_and_4() {
    let want = golden("campaign_chaos_small.json");
    let campaign = small_chaos_campaign();
    for jobs in [1, 4] {
        assert_eq!(
            campaign
                .run_with_jobs(jobs)
                .expect("campaign run failed")
                .to_canonical_json(),
            want,
            "campaign_chaos_small.json diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn timeline_golden_bits_survive_the_rewrite() {
    let cfg = SimConfig::at_scale(Scale::new(16_384));
    let (sink, collected) = CollectingSink::new();
    SimRun::new(&cfg)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(sink))
        .run_one()
        .expect("DFP on the microbenchmark");
    let events = collected.borrow().clone();
    assert_eq!(
        render_chrome_trace(&events),
        golden("timeline_small.chrome.json"),
        "timeline_small.chrome.json diverged"
    );
}

/// Every workload × kernel scheme × chaos preset × tenant policy, run
/// serially and with four workers: the two reports must agree bit for
/// bit (stats, attribution, percentiles, tenant telemetry — the whole
/// canonical rendering). The tiny scale keeps the 540-cell grid cheap;
/// the axes, not the resolution, are what the rewrite must survive.
#[test]
fn full_grid_is_byte_identical_serial_vs_parallel() {
    let cfg = SimConfig::at_scale(Scale::new(256));
    let schemes = [
        Scheme::Baseline,
        Scheme::Dfp,
        Scheme::DfpStop,
        Scheme::Sip,
        Scheme::Hybrid,
    ];
    let chaos = [
        ("none", ChaosSchedule::none()),
        ("light", ChaosSchedule::light(7)),
        ("heavy", ChaosSchedule::heavy(7)),
    ];
    let tenants = [
        ("none", TenantPolicy::none()),
        ("fair2", TenantPolicy::fair(2, cfg.epc_pages)),
    ];
    for (tlabel, policy) in tenants {
        let campaign = Campaign::chaos_grid(
            "equivalence_full",
            2026,
            &Benchmark::ALL,
            &schemes,
            cfg.with_tenant_policy(policy),
            &chaos,
        );
        let serial = campaign
            .run_with_jobs(1)
            .expect("serial campaign run failed")
            .to_canonical_json();
        let parallel = campaign
            .run_with_jobs(4)
            .expect("parallel campaign run failed")
            .to_canonical_json();
        assert_eq!(
            serial, parallel,
            "tenant={tlabel}: serial and 4-worker grids diverged"
        );
    }
}
