//! The record/replay differential battery.
//!
//! Every paper benchmark is recorded in full, round-tripped through the
//! compact binary `.sgxt` format *on disk*, and replayed through the
//! campaign engine under every kernel scheme. The replayed grid's
//! canonical JSON must be byte-identical to the generator grid's — at
//! one worker and at four.

use sgx_preloading::prelude::*;

/// Records each paper benchmark's full Ref stream, writes it to `.sgxt`
/// on disk, reads it back, and wraps it for replay.
fn roundtripped_replays(dir: &std::path::Path, cfg: &SimConfig) -> Vec<TraceReplay> {
    Benchmark::PAPER
        .iter()
        .map(|&bench| {
            let trace =
                RecordedTrace::record(bench.build(InputSet::Ref, cfg.scale, cfg.seed), usize::MAX);
            let path = dir.join(format!("{}.sgxt", bench.name()));
            trace.write_sgxt(&path).expect("write .sgxt");
            let loaded = RecordedTrace::read_sgxt(&path).expect("read .sgxt back");
            assert_eq!(
                loaded.accesses(),
                trace.accesses(),
                "{} did not survive the .sgxt disk round-trip",
                bench.name()
            );
            TraceReplay::of_benchmark(bench, loaded)
        })
        .collect()
}

#[test]
fn replayed_sgxt_grids_match_generator_grids_at_any_worker_count() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    let dir = std::env::temp_dir().join("sgx_trace_replay_battery");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let replays = roundtripped_replays(&dir, &cfg);

    // Shared seeding: every cell sees the campaign seed verbatim, which
    // is the seed the traces were recorded at.
    let generator = Campaign::grid("battery", cfg.seed, &Benchmark::PAPER, &Scheme::ALL, cfg)
        .with_seed_mode(SeedMode::Shared)
        .run_serial()
        .expect("generator grid")
        .to_canonical_json();

    let replay_campaign = Campaign::replay_grid("battery", cfg.seed, &replays, &Scheme::ALL, cfg)
        .with_seed_mode(SeedMode::Shared);
    let replayed_serial = replay_campaign
        .run_serial()
        .expect("replay grid, serial")
        .to_canonical_json();
    let replayed_parallel = replay_campaign
        .run_with_jobs(4)
        .expect("replay grid, 4 workers")
        .to_canonical_json();

    assert_eq!(
        generator, replayed_serial,
        "serial replay diverged from the generator grid"
    );
    assert_eq!(
        generator, replayed_parallel,
        "4-worker replay diverged from the generator grid"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// The CSV leg of the losslessness contract at engine level: a trace
/// converted `.sgxt` → CSV → `.sgxt` replays to the identical report.
#[test]
fn csv_converted_traces_replay_identically() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    let bench = Benchmark::KvStore;
    let trace = RecordedTrace::record(bench.build(InputSet::Ref, cfg.scale, cfg.seed), usize::MAX);
    let via_csv = RecordedTrace::from_csv(&trace.to_csv()).expect("csv round-trip");
    let via_sgxt = RecordedTrace::from_sgxt(&via_csv.to_sgxt()).expect("sgxt round-trip");
    let direct = SimRun::new(&cfg)
        .scheme(Scheme::Hybrid)
        .bench(bench)
        .run_one()
        .expect("direct run");
    let replayed = SimRun::new(&cfg)
        .scheme(Scheme::Hybrid)
        .replay(TraceReplay::of_benchmark(bench, via_sgxt))
        .run_one()
        .expect("replayed run");
    assert_eq!(direct, replayed);
}
