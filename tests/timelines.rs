//! Cycle-exact verification of the paper's Fig. 2 and Fig. 4 timelines.
//!
//! Fig. 2: baseline loading of pages 1–4 costs
//! `t_access + 3·(t_AEX + t_ERESUME) + t_load2 + t_load3 + t_load4`
//! (page 1 is resident), while DFP collapses the three world switches into
//! one by preloading pages 3 and 4 behind the fault on page 2.
//!
//! Fig. 4: the baseline fault on page 2 costs
//! `t_AEX + t_load + t_ERESUME`; SIP's notification costs
//! `t_load + t_notification`, a benefit of
//! `t_AEX + t_ERESUME − t_notification`.

use sgx_preloading::dfp::NextLinePredictor;
use sgx_preloading::kernel::{Kernel, KernelConfig};
use sgx_preloading::{Cycles, NoPredictor, ProcessId, VirtPage};

const PID: ProcessId = ProcessId(0);

fn kernel(predictor_pages: Option<u64>) -> Kernel {
    let mut k = Kernel::new(
        KernelConfig::new(1 << 16), // EPC large enough: no evictions in the figures
        match predictor_pages {
            Some(n) => Box::new(NextLinePredictor::new(n)),
            None => Box::new(NoPredictor),
        },
    );
    k.register_enclave(PID, 1 << 20).unwrap();
    k
}

fn costs() -> sgx_preloading::CostModel {
    sgx_preloading::CostModel::paper_defaults()
}

/// Walks pages 1..=4 with `compute` cycles between touches, page 1
/// pre-loaded; returns the finish time.
fn walk_fig2(k: &mut Kernel, compute: Cycles) -> Cycles {
    // Page 1 is already in EPC when Fig. 2 starts.
    let r = k.page_fault(Cycles::ZERO, PID, VirtPage::new(1));
    let mut now = r.resume_at;
    for page in 2..=4u64 {
        now += compute;
        match k.app_access(now, PID, VirtPage::new(page)) {
            Some(_) => {}
            None => now = k.page_fault(now, PID, VirtPage::new(page)).resume_at,
        }
    }
    now
}

#[test]
fn fig2_baseline_formula() {
    let c = costs();
    let compute = Cycles::new(50_000); // enough for background work to drain
    let mut k = kernel(None);
    let start = k.page_fault(Cycles::ZERO, PID, VirtPage::new(1)).resume_at;
    let finish = walk_fig2(&mut kernel(None), compute) - start;
    // Three faults, each AEX + handler + load + ERESUME, plus the compute.
    let expected = (c.aex + c.os_fault_path + c.eldu + c.eresume + compute) * 3;
    assert_eq!(finish, expected, "Fig. 2 baseline timeline");
}

#[test]
fn fig2_dfp_eliminates_the_latter_world_switches() {
    let compute = Cycles::new(50_000);
    let baseline = walk_fig2(&mut kernel(None), compute);
    // Next-line degree 3 ≈ the figure's "preload 3 and 4 after the fault
    // on 2" (plus page 5, harmlessly).
    let dfp = walk_fig2(&mut kernel(Some(3)), compute);
    let c = costs();
    let saved = baseline - dfp;
    // The predictor fires on the fault that brings page 1 in, so pages
    // 2–4 all preload entirely inside the 50k-cycle compute windows and
    // all three fault paths of the figure collapse to plain hits — the
    // figure's benefit, one page earlier.
    let expected = (c.aex + c.os_fault_path + c.eldu + c.eresume) * 3;
    assert_eq!(saved, expected, "Fig. 2 DFP benefit");
}

#[test]
fn fig4_sip_notification_skips_the_world_switch() {
    let c = costs();
    // Baseline: a demand fault on page 2.
    let mut k = kernel(None);
    let fault = k.page_fault(Cycles::ZERO, PID, VirtPage::new(2));
    let fault_cost = fault.resume_at;
    assert_eq!(fault_cost, c.aex + c.os_fault_path + c.eldu + c.eresume);

    // SIP: bitmap check says absent, notify, blocking load — in-enclave.
    let mut k = kernel(None);
    let mut now = Cycles::ZERO;
    assert!(!k.sip_present(now, PID, VirtPage::new(2)));
    now += c.bitmap_check + c.notify;
    now = k.sip_load(now, PID, VirtPage::new(2));
    let sip_cost = now;
    assert_eq!(sip_cost, c.bitmap_check + c.notify + c.eldu);

    // The paper's benefit formula: t_AEX + t_ERESUME − t_notification.
    let benefit = fault_cost - sip_cost;
    assert_eq!(
        benefit,
        c.aex + c.eresume + c.os_fault_path - c.notify - c.bitmap_check,
        "Fig. 4 benefit = world switch minus notification overhead"
    );
    // With paper numbers: 10k + 10k + 1k − 1.2k − 0.15k = 19,650 cycles.
    assert_eq!(benefit, Cycles::new(19_650));
}

#[test]
fn fig4_notify_on_present_page_costs_only_the_check() {
    let c = costs();
    let mut k = kernel(None);
    let r = k.page_fault(Cycles::ZERO, PID, VirtPage::new(2));
    let now = r.resume_at;
    // Instrumented access to a present page: BIT_MAP_CHECK true → no load.
    assert!(k.sip_present(now, PID, VirtPage::new(2)));
    let done = k.sip_load(now + c.bitmap_check, PID, VirtPage::new(2));
    assert_eq!(
        done,
        now + c.bitmap_check,
        "present page: the instrumented overhead is the check alone"
    );
}
