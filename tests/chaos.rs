//! The differential degradation battery for the chaos layer.
//!
//! Every workload runs under every kernel scheme with seeded
//! fault-injection schedules, and the battery asserts the
//! graceful-degradation contract: injection may change *when* things
//! happen (cycle counts, preload mix), but never *what* the run computes
//! (access count, termination), never the accounting (the counters in
//! [`sgx_preloading::RunReport`] must still equal the tallies a
//! [`CountingSink`] reconstructs from the event stream), and never the
//! valve's latch semantics (once stopped, zero further preloads). An
//! all-zero schedule must be a strict no-op: bit-identical reports,
//! byte-identical golden campaign JSON.
//!
//! The chaos golden file regenerates like the campaign one:
//!
//! ```text
//! SGX_GOLDEN_UPDATE=1 cargo test --test chaos
//! ```

use std::path::PathBuf;

use sgx_preloading::kernel::EventKind;
use sgx_preloading::prelude::*;
use sgx_preloading::CollectingSink;

const UPDATE_ENV: &str = "SGX_GOLDEN_UPDATE";

/// Slowdown ceiling for the battery's schedules: the paper's DFP-stop
/// argument (§4) is that bounded misprediction keeps overhead bounded;
/// with drop rates ≤ 0.25 and stalls in the tens of kilocycles the
/// injected run must stay well under this multiple of the clean run.
const MAX_SLOWDOWN: f64 = 3.0;

const KERNEL_SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Dfp,
    Scheme::DfpStop,
    Scheme::Sip,
    Scheme::Hybrid,
];

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::new(48))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs one bench/scheme with the given chaos schedule, counting events.
fn run_counted(
    cfg: &SimConfig,
    bench: Benchmark,
    scheme: Scheme,
    chaos: ChaosSchedule,
) -> (sgx_preloading::RunReport, sgx_preloading::EventCounts) {
    let (sink, counts) = CountingSink::new();
    let r = SimRun::new(&cfg.with_chaos(chaos))
        .scheme(scheme)
        .bench(bench)
        .sink(Box::new(sink))
        .run_one()
        .unwrap_or_else(|e| panic!("{}/{}: {e}", bench.name(), scheme.name()));
    (r, counts.get())
}

/// The tentpole battery: every workload × kernel scheme × schedule. No
/// panics, stats/stream agreement, workload preserved, slowdown bounded.
#[test]
fn battery_every_workload_scheme_and_schedule_degrades_gracefully() {
    let c = cfg();
    for bench in Benchmark::ALL {
        for scheme in KERNEL_SCHEMES {
            let clean = SimRun::new(&c)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            for (name, sched) in [
                ("light", ChaosSchedule::light(0xC0FFEE)),
                ("heavy", ChaosSchedule::heavy(0xBADCAB)),
            ] {
                let ctx = format!("{}/{}/{name}", bench.name(), scheme.name());
                let (r, ev) = run_counted(&c, bench, scheme, sched);
                // The workload itself is untouched: same accesses, and
                // the run terminated (or we would not be here).
                assert_eq!(r.accesses, clean.accesses, "{ctx}: accesses");
                // Accounting: stats must equal the stream reconstruction.
                assert_eq!(ev.faults, r.faults, "{ctx}: faults");
                assert_eq!(ev.faults_resolved, r.faults, "{ctx}: resolutions");
                assert_eq!(ev.preload_starts, r.preloads_started, "{ctx}: preloads");
                assert_eq!(ev.preload_aborts, r.preloads_aborted, "{ctx}: aborts");
                assert_eq!(
                    ev.background_evictions, r.background_evictions,
                    "{ctx}: bg evictions"
                );
                assert_eq!(
                    ev.foreground_evictions, r.foreground_evictions,
                    "{ctx}: fg evictions"
                );
                assert_eq!(
                    ev.valve_stops,
                    u64::from(r.dfp_stopped_at.is_some()),
                    "{ctx}: valve"
                );
                assert!(ev.preload_hits <= r.preloads_touched, "{ctx}: preload hits");
                // Bounded degradation (the paper's §4 envelope).
                let slowdown = r.total_cycles.raw() as f64 / clean.total_cycles.raw() as f64;
                assert!(
                    slowdown < MAX_SLOWDOWN,
                    "{ctx}: slowdown {slowdown:.2}x exceeds {MAX_SLOWDOWN}x"
                );
            }
        }
    }
}

/// The all-zero schedule is a strict no-op: the full report — including
/// the p50/p90/p99 latency percentiles — is bit-identical to a run with
/// no injector installed, for every kernel scheme. (`RunReport` derives
/// `PartialEq` over every field, so one assert covers them all.)
#[test]
fn zero_schedule_reports_are_bit_identical_to_uninjected() {
    let c = cfg();
    for scheme in KERNEL_SCHEMES {
        let plain = SimRun::new(&c)
            .scheme(scheme)
            .bench(Benchmark::Deepsjeng)
            .run_one()
            .unwrap();
        let zeroed = SimRun::new(&c.with_chaos(ChaosSchedule::none().with_seed(0xDEAD)))
            .scheme(scheme)
            .bench(Benchmark::Deepsjeng)
            .run_one()
            .unwrap();
        assert_eq!(
            plain,
            zeroed,
            "{}: zero chaos perturbed the run",
            scheme.name()
        );
    }
}

/// A zero-chaos config reproduces `tests/golden/campaign_small.json`
/// byte-for-byte — the chaos layer cannot shift the pinned numbers.
#[test]
fn zero_chaos_campaign_matches_the_existing_golden_report() {
    let campaign = Campaign::grid(
        "golden_small",
        2020,
        &[Benchmark::Microbenchmark, Benchmark::Deepsjeng],
        &[Scheme::Baseline, Scheme::DfpStop, Scheme::Sip],
        SimConfig::at_scale(Scale::new(64)).with_chaos(ChaosSchedule::none().with_seed(31337)),
    );
    let got = campaign
        .run_with_jobs(2)
        .expect("campaign run failed")
        .to_canonical_json();
    let want = std::fs::read_to_string(golden_path("campaign_small.json"))
        .expect("golden campaign report exists");
    assert_eq!(
        got, want,
        "zero-chaos campaign drifted from the golden file"
    );
}

/// Same schedule seed, same decisions: two injected runs of the same cell
/// are field-identical, and a different chaos seed leaves the workload
/// stream (access count) alone.
#[test]
fn chaos_runs_are_deterministic_in_the_schedule_seed() {
    let c = cfg();
    let sched = ChaosSchedule::heavy(7);
    let (a, ev_a) = run_counted(&c, Benchmark::Mcf, Scheme::Dfp, sched);
    let (b, ev_b) = run_counted(&c, Benchmark::Mcf, Scheme::Dfp, sched);
    assert_eq!(a, b, "same chaos seed must reproduce the run exactly");
    assert_eq!(ev_a, ev_b, "and the event stream tallies with it");
    let (other, _) = run_counted(&c, Benchmark::Mcf, Scheme::Dfp, ChaosSchedule::heavy(8));
    assert_eq!(
        a.accesses, other.accesses,
        "the chaos seed only perturbs the kernel, never the workload"
    );
}

/// Valve semantics under forced flapping: once a `ValveStopped` event is
/// streamed — real or chaos-forced — not a single further `PreloadStart`
/// may appear, on any preloading scheme.
#[test]
fn valve_latch_admits_no_preload_after_stopping() {
    let c = cfg();
    let flappy = ChaosSchedule::heavy(41).with_valve_flap(0.02);
    for scheme in [Scheme::Dfp, Scheme::DfpStop, Scheme::Hybrid] {
        for bench in [Benchmark::Microbenchmark, Benchmark::Lbm, Benchmark::Xz] {
            let (sink, events) = CollectingSink::new();
            SimRun::new(&c.with_chaos(flappy))
                .scheme(scheme)
                .bench(bench)
                .sink(Box::new(sink))
                .run_one()
                .unwrap();
            let events = events.borrow();
            let Some(stop) = events
                .iter()
                .position(|e| e.what == EventKind::ValveStopped)
            else {
                continue;
            };
            assert!(
                !events[stop..]
                    .iter()
                    .any(|e| e.what == EventKind::PreloadStart),
                "{}/{}: preload started after the valve latched",
                bench.name(),
                scheme.name()
            );
        }
    }
}

/// The pinned chaos campaign: a `none`/`light`/`heavy` schedule axis over
/// two benchmarks and two preloading schemes, byte-compared against
/// `tests/golden/campaign_chaos_small.json`. Regenerate with
/// `SGX_GOLDEN_UPDATE=1 cargo test --test chaos`.
#[test]
fn chaos_campaign_matches_golden_report() {
    let campaign = Campaign::chaos_grid(
        "chaos_small",
        2021,
        &[Benchmark::Microbenchmark, Benchmark::Deepsjeng],
        &[Scheme::Dfp, Scheme::DfpStop],
        SimConfig::at_scale(Scale::new(64)),
        &[
            ("none", ChaosSchedule::none()),
            ("light", ChaosSchedule::light(9)),
            ("heavy", ChaosSchedule::heavy(9)),
        ],
    );
    let serial = campaign
        .run_serial()
        .expect("serial campaign run failed")
        .to_canonical_json();
    let parallel = campaign
        .run_with_jobs(4)
        .expect("parallel campaign run failed")
        .to_canonical_json();
    assert_eq!(
        serial, parallel,
        "chaos campaign must parallelize deterministically"
    );
    let path = golden_path("campaign_chaos_small.json");
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, &serial).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `{UPDATE_ENV}=1 cargo test --test chaos` to generate it",
            path.display()
        )
    });
    assert_eq!(
        serial, want,
        "chaos campaign drifted from the golden report; if intentional, \
         regenerate with `{UPDATE_ENV}=1 cargo test --test chaos`"
    );
}
