//! Cross-crate integration tests: the paper's qualitative claims, checked
//! end-to-end at 1/16 scale through the public facade.

use sgx_preloading::prelude::*;

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::DEV)
}

fn improvement(bench: Benchmark, scheme: Scheme) -> f64 {
    let c = cfg();
    let base = SimRun::new(&c)
        .scheme(Scheme::Baseline)
        .bench(bench)
        .run_one()
        .unwrap();
    SimRun::new(&c)
        .scheme(scheme)
        .bench(bench)
        .run_one()
        .unwrap()
        .improvement_over(&base)
}

#[test]
fn motivation_sgx_slows_sequential_scan_by_an_order_of_magnitude() {
    let c = cfg();
    let inside = SimRun::new(&c)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Microbenchmark)
        .run_one()
        .unwrap();
    let outside = SimRun::new(&c)
        .outside(
            "outside",
            Benchmark::Microbenchmark.build(InputSet::Ref, c.scale, c.seed),
        )
        .run_one()
        .unwrap();
    let slowdown = inside.total_cycles.raw() as f64 / outside.total_cycles.raw() as f64;
    assert!(
        (15.0..70.0).contains(&slowdown),
        "slowdown {slowdown:.1}x out of the paper's ≈46x regime"
    );
    // And the per-fault cost matches §2's 60k–64k (+ handler overhead).
    let mean = inside.fault_service_mean.raw();
    assert!(
        (60_000..70_000).contains(&mean),
        "mean enclave fault cost {mean} outside 60–70k cycles"
    );
}

#[test]
fn fig8_dfp_helps_every_regular_large_benchmark() {
    for bench in [
        Benchmark::Microbenchmark,
        Benchmark::Bwaves,
        Benchmark::Lbm,
        Benchmark::Wrf,
        Benchmark::Sift,
    ] {
        let gain = improvement(bench, Scheme::Dfp);
        assert!(
            (0.08..0.30).contains(&gain),
            "{bench}: DFP gain {gain:.3} outside the paper's 9–19% band"
        );
    }
}

#[test]
fn fig8_dfp_regresses_on_irregular_benchmarks() {
    for bench in [Benchmark::Roms, Benchmark::Mcf, Benchmark::Omnetpp] {
        let gain = improvement(bench, Scheme::Dfp);
        assert!(
            gain < 0.0,
            "{bench}: plain DFP should cost performance, got {gain:+.3}"
        );
    }
}

#[test]
fn fig8_dfp_stop_bounds_the_regression() {
    let c = cfg();
    for bench in [Benchmark::Roms, Benchmark::Mcf, Benchmark::Deepsjeng] {
        let base = SimRun::new(&c)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        let plain = SimRun::new(&c)
            .scheme(Scheme::Dfp)
            .bench(bench)
            .run_one()
            .unwrap();
        let stopped = SimRun::new(&c)
            .scheme(Scheme::DfpStop)
            .bench(bench)
            .run_one()
            .unwrap();
        assert!(
            stopped.total_cycles <= plain.total_cycles,
            "{bench}: DFP-stop must never lose to plain DFP"
        );
        let overhead = -stopped.improvement_over(&base);
        assert!(
            overhead < 0.05,
            "{bench}: DFP-stop overhead {overhead:.3} exceeds the paper's ≈2.8% average regime"
        );
    }
}

#[test]
fn fig10_sip_helps_irregular_c_benchmarks() {
    for (bench, lo, hi) in [
        (Benchmark::Deepsjeng, 0.05, 0.25),
        (Benchmark::Mcf2006, 0.02, 0.12),
        (Benchmark::Xz, 0.05, 0.25),
    ] {
        let gain = improvement(bench, Scheme::Sip);
        assert!(
            (lo..hi).contains(&gain),
            "{bench}: SIP gain {gain:.3} outside [{lo}, {hi})"
        );
    }
}

#[test]
fn fig10_sip_cannot_help_streaming_programs() {
    for bench in [Benchmark::Microbenchmark, Benchmark::Lbm, Benchmark::Sift] {
        let c = cfg();
        let r = SimRun::new(&c)
            .scheme(Scheme::Sip)
            .bench(bench)
            .run_one()
            .unwrap();
        assert_eq!(
            r.instrumentation_points, 0,
            "{bench}: no irregular sites should clear the 5% threshold"
        );
        let gain = improvement(bench, Scheme::Sip);
        assert!(
            gain.abs() < 0.01,
            "{bench}: SIP without points must be a no-op, got {gain:+.3}"
        );
    }
}

#[test]
fn sec52_mcf_is_the_sip_wash() {
    let c = cfg();
    let sip = SimRun::new(&c)
        .scheme(Scheme::Sip)
        .bench(Benchmark::Mcf)
        .run_one()
        .unwrap();
    let base = SimRun::new(&c)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::Mcf)
        .run_one()
        .unwrap();
    assert!(
        sip.instrumentation_points > 80,
        "mcf is heavily instrumented (paper: 99 points), got {}",
        sip.instrumentation_points
    );
    assert!(
        sip.faults < base.faults / 3,
        "instrumentation removes most faults"
    );
    let gain = sip.improvement_over(&base);
    assert!(
        gain.abs() < 0.05,
        "Class-1 check overhead must cancel the Class-3 savings, got {gain:+.3}"
    );
}

#[test]
fn fig12_hybrid_tracks_the_better_single_scheme() {
    let c = cfg();
    for bench in [
        Benchmark::Deepsjeng,
        Benchmark::Xz,
        Benchmark::Mser,
        Benchmark::Lbm,
    ] {
        let base = SimRun::new(&c)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        let dfp = SimRun::new(&c)
            .scheme(Scheme::DfpStop)
            .bench(bench)
            .run_one()
            .unwrap()
            .improvement_over(&base);
        let sip = SimRun::new(&c)
            .scheme(Scheme::Sip)
            .bench(bench)
            .run_one()
            .unwrap()
            .improvement_over(&base);
        let hybrid = SimRun::new(&c)
            .scheme(Scheme::Hybrid)
            .bench(bench)
            .run_one()
            .unwrap()
            .improvement_over(&base);
        assert!(
            hybrid > dfp.max(sip) - 0.03,
            "{bench}: hybrid {hybrid:+.3} falls behind best({dfp:+.3}, {sip:+.3})"
        );
    }
}

#[test]
fn fig13_mixed_blood_needs_both_schemes() {
    let c = cfg();
    let base = SimRun::new(&c)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::MixedBlood)
        .run_one()
        .unwrap();
    let dfp = SimRun::new(&c)
        .scheme(Scheme::DfpStop)
        .bench(Benchmark::MixedBlood)
        .run_one()
        .unwrap()
        .improvement_over(&base);
    let sip = SimRun::new(&c)
        .scheme(Scheme::Sip)
        .bench(Benchmark::MixedBlood)
        .run_one()
        .unwrap()
        .improvement_over(&base);
    let hybrid = SimRun::new(&c)
        .scheme(Scheme::Hybrid)
        .bench(Benchmark::MixedBlood)
        .run_one()
        .unwrap()
        .improvement_over(&base);
    assert!(sip > 0.0, "SIP alone helps a little ({sip:+.3})");
    assert!(dfp > sip, "DFP helps more on the scan phase ({dfp:+.3})");
    assert!(
        hybrid >= dfp.max(sip),
        "the combination must win: hybrid {hybrid:+.3} vs dfp {dfp:+.3} / sip {sip:+.3}"
    );
}

#[test]
fn fig11_sift_is_dfp_territory_mser_is_sip_territory() {
    let sift_dfp = improvement(Benchmark::Sift, Scheme::DfpStop);
    let mser_sip = improvement(Benchmark::Mser, Scheme::Sip);
    assert!(sift_dfp > 0.05, "SIFT under DFP: {sift_dfp:+.3}");
    assert!(mser_sip > 0.01, "MSER under SIP: {mser_sip:+.3}");
    // And SIP finds nothing to do on SIFT (paper Table 2: 0 points).
    let c = cfg();
    let sift_sip = SimRun::new(&c)
        .scheme(Scheme::Sip)
        .bench(Benchmark::Sift)
        .run_one()
        .unwrap();
    assert_eq!(sift_sip.instrumentation_points, 0);
}

#[test]
fn preloading_never_breaks_small_working_sets() {
    let c = cfg();
    for bench in [Benchmark::Leela, Benchmark::Exchange2, Benchmark::Nab] {
        let base = SimRun::new(&c)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        for scheme in [Scheme::Dfp, Scheme::DfpStop, Scheme::Sip, Scheme::Hybrid] {
            let r = SimRun::new(&c)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            let delta = r.improvement_over(&base);
            assert!(
                delta > -0.02,
                "{bench} under {scheme}: regression {delta:+.3} on a small working set"
            );
        }
    }
}
