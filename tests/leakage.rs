//! Integration tests for the side-channel leakage observatory.
//!
//! Pins the observer's core promises: it is *blind* to enclave-private
//! events, its reports are byte-identical for any worker count, the
//! secret-pair grid reproduces the paper-level directional claims (SIP
//! masks the fault channel, plain DFP amplifies the echo pair, the ORAM
//! reference is exactly indistinguishable), and the canonical grid JSON
//! matches the checked-in golden under `tests/golden/`.
//!
//! Regenerate the golden after an intentional change with:
//!
//! ```text
//! SGX_GOLDEN_UPDATE=1 cargo test --test leakage
//! ```

use std::path::PathBuf;

use sgx_preloading::observer::shannon_entropy;
use sgx_preloading::prelude::*;
use sgx_preloading::EventCounts;

/// Environment variable that switches the golden harness from compare
/// to regenerate.
const UPDATE_ENV: &str = "SGX_GOLDEN_UPDATE";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The fixed leakage grid the golden file pins: all three secret pairs
/// across the baseline/DFP/SIP panel (plus the per-pair ORAM reference
/// rows the grid adds itself), shared seeding, window 64.
fn leakage_campaign() -> Campaign {
    Campaign::leakage_grid(
        "golden_leakage",
        2020,
        &SecretPair::ALL,
        &[Scheme::Baseline, Scheme::Dfp, Scheme::Sip],
        SimConfig::at_scale(Scale::new(64)),
        64,
    )
}

fn leakage_of<'a>(report: &'a CampaignReport, label: &str) -> &'a LeakageReport {
    report
        .cell(label)
        .unwrap_or_else(|| panic!("grid has no cell {label:?}"))
        .leakage
        .as_ref()
        .unwrap_or_else(|| panic!("cell {label:?} carries no leakage report"))
}

/// The observer sees exactly the OS-visible subset of the event stream:
/// its counts equal the full tally with `preload_hits` (the only
/// enclave-private kind — a first touch of an already-resident page
/// causes no AEX) zeroed out, and every suppressed event is accounted
/// for in `private_suppressed`.
#[test]
fn observer_reconstructs_exactly_the_os_visible_counts() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    let (observer, obs) = ObserverSink::new();
    let (counting, full) = CountingSink::new();
    SimRun::new(&cfg)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(observer))
        .sink(Box::new(counting))
        .run_one()
        .expect("DFP run failed");
    let full: EventCounts = full.get();
    let obs = obs.borrow();
    assert!(
        full.preload_hits > 0,
        "the DFP cell must produce preload hits for blindness to be testable"
    );
    let mut visible = full;
    visible.preload_hits = 0;
    assert_eq!(
        obs.counts, visible,
        "observer counts must be the full tally minus the private kind"
    );
    assert_eq!(obs.counts.preload_hits, 0, "observer saw a private event");
    assert_eq!(
        obs.private_suppressed, full.preload_hits,
        "every suppressed event must be tallied"
    );
    assert_eq!(obs.observed_events(), full.total() - full.preload_hits);
}

/// A mispredict storm (spurious preloads of pages drawn uniformly from
/// the enclave's ELRANGE) only adds noise to the load channel the OS
/// watches: on a workload with a concentrated hot set, ramping the
/// storm rate monotonically raises the channel-page entropy toward
/// uniform, and lengthens the observed channel sequence.
#[test]
fn spurious_storms_only_add_entropy_to_the_load_channel() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    let observe = |rate: f64| {
        let cfg = if rate == 0.0 {
            cfg
        } else {
            cfg.with_chaos(ChaosSchedule::none().with_seed(7).with_spurious(rate, 8))
        };
        let (observer, obs) = ObserverSink::new();
        SimRun::new(&cfg)
            .scheme(Scheme::Dfp)
            .bench(Benchmark::KvStore)
            .sink(Box::new(observer))
            .run_one()
            .expect("DFP run failed");
        let obs = obs.borrow();
        (shannon_entropy(&obs.channel_pages), obs.channel_pages.len())
    };
    let ramp: Vec<(f64, (f64, usize))> = [0.0, 0.1, 0.3]
        .into_iter()
        .map(|r| (r, observe(r)))
        .collect();
    for pair in ramp.windows(2) {
        let (lo_rate, (lo_entropy, lo_len)) = pair[0];
        let (hi_rate, (hi_entropy, hi_len)) = pair[1];
        assert!(
            hi_len > lo_len,
            "storm rate {hi_rate} must lengthen the observed load channel \
             over rate {lo_rate} ({hi_len} vs {lo_len})"
        );
        assert!(
            hi_entropy >= lo_entropy,
            "storm rate {hi_rate} must not reduce channel entropy below \
             rate {lo_rate}'s ({hi_entropy:.4} vs {lo_entropy:.4})"
        );
    }
}

/// The leakage grid is deterministic: serial and 4-worker runs agree
/// field-for-field and byte-for-byte in canonical JSON.
#[test]
fn leakage_report_is_identical_for_any_worker_count() {
    let campaign = leakage_campaign();
    let serial = campaign.run_serial().expect("serial leakage run failed");
    let parallel = campaign
        .run_with_jobs(4)
        .expect("parallel leakage run failed");
    assert_eq!(serial.cells.len(), 12, "3 pairs x (3 schemes + oram row)");
    for (s, p) in serial.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.leakage, p.leakage, "cell {} leakage diverged", s.label);
    }
    assert_eq!(
        serial.to_canonical_json(),
        parallel.to_canonical_json(),
        "canonical JSON must be byte-identical regardless of worker count"
    );
}

/// The paper-level directional claims, pinned:
///
/// * on `branch-halves` the baseline fault channel identifies the
///   secret, and SIP's blocking loads close that channel (faults no
///   longer depend on the secret half);
/// * on `dfp-echo` plain DFP *amplifies* distinguishability over
///   baseline — the predictor echoes the secret stream as preload
///   requests while stripping the predictable cover traffic;
/// * every ORAM reference row is exactly indistinguishable (both
///   labels replay the same padded stream).
#[test]
fn schemes_mask_and_amplify_as_pinned() {
    let report = leakage_campaign()
        .run_with_jobs(4)
        .expect("leakage grid failed");

    // SIP masks the fault channel on branch-halves.
    let base = leakage_of(&report, "branch-halves/baseline");
    let sip = leakage_of(&report, "branch-halves/SIP");
    assert!(
        base.fault_distinguishability() > 0.5,
        "baseline branch-halves fault channel must leak clearly, got {:.4}",
        base.fault_distinguishability()
    );
    assert!(
        sip.fault_distinguishability() < 0.05,
        "SIP must close the branch-halves fault channel, got {:.4}",
        sip.fault_distinguishability()
    );
    assert!(
        sip.variants[0].faults < base.variants[0].faults / 4,
        "SIP's blocking loads must remove most faults ({} vs {})",
        sip.variants[0].faults,
        base.variants[0].faults
    );

    // Plain DFP amplifies the echo pair.
    let echo_base = leakage_of(&report, "dfp-echo/baseline");
    let echo_dfp = leakage_of(&report, "dfp-echo/DFP");
    assert!(
        echo_dfp.distinguishability() > echo_base.distinguishability(),
        "DFP must amplify dfp-echo distinguishability ({:.4} vs baseline {:.4})",
        echo_dfp.distinguishability(),
        echo_base.distinguishability()
    );

    // The ORAM reference rows are perfectly private.
    for pair in SecretPair::ALL {
        let oram = leakage_of(&report, &format!("{}/oram", pair.name()));
        assert!(oram.oram);
        assert_eq!(
            oram.distinguishability(),
            0.0,
            "{}/oram must be exactly indistinguishable",
            pair.name()
        );
        assert_eq!(oram.variants[0].faults, oram.variants[1].faults);
    }
}

/// The canonical leakage-grid JSON matches the checked-in golden.
#[test]
fn leakage_grid_matches_golden() {
    let report = leakage_campaign()
        .run_with_jobs(2)
        .expect("leakage grid failed");
    let got = report.to_canonical_json();
    let path = golden_path("campaign_leakage.json");
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, &got).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `{UPDATE_ENV}=1 cargo test --test leakage` to generate it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "leakage grid drifted from the golden; if intentional, regenerate \
         with `{UPDATE_ENV}=1 cargo test --test leakage`"
    );
}
