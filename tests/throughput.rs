//! Throughput floor smoke for the hot-path engine rewrite.
//!
//! The timeline microbenchmark cell (DFP at scale 48 with the
//! Chrome-trace sink attached) must clear a conservative wall-clock
//! events/sec floor, so a performance regression — in particular
//! anything super-linear in the event stream, like the pre-rewrite
//! quadratic trace render — fails CI instead of rotting silently.
//!
//! The floors sit far below the measured rates (~2.5M events/sec in
//! release, ~580k in debug, vs a 48k pre-rewrite baseline) so machine
//! noise cannot trip them, while a return to the quadratic render
//! (tens of kilo-events/sec) still fails by an order of magnitude.

use sgx_preloading::{Benchmark, ChromeTraceSink, CountingSink, Scale, Scheme, SimConfig, SimRun};

/// Conservative floor, build-profile aware: tier-1 runs this in debug.
const FLOOR_EVENTS_PER_SEC: f64 = if cfg!(debug_assertions) {
    60_000.0
} else {
    400_000.0
};

#[test]
fn timeline_cell_clears_the_events_per_sec_floor() {
    let cfg = SimConfig::at_scale(Scale::new(48));
    let (counter, counts) = CountingSink::new();
    let t0 = std::time::Instant::now();
    SimRun::new(&cfg)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(ChromeTraceSink::new(std::io::sink())))
        .sink(Box::new(counter))
        .run_one()
        .expect("DFP on the microbenchmark");
    let secs = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let events = counts.get().total();
    assert!(events > 100_000, "cell shrank: only {events} events");
    let rate = events as f64 / secs;
    assert!(
        rate >= FLOOR_EVENTS_PER_SEC,
        "throughput regression: {rate:.0} events/sec is below the \
         {FLOOR_EVENTS_PER_SEC:.0} floor ({events} events in {secs:.3}s)"
    );
}
