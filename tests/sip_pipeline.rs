//! The SIP profile-then-instrument pipeline across crates: train-input
//! profiles must transfer to ref-input runs, and the instrumentation-point
//! counts must reproduce the structure of the paper's Table 2.

use sgx_preloading::{build_plan, profile_stream, Benchmark, InputSet, Scale, Scheme, SimConfig};
use sgx_sip::{InstrumentationPlan, SipConfig};

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::DEV)
}

#[test]
fn table2_instrumentation_point_structure() {
    // Paper Table 2: mcf.2006 114, mcf 99, xz 46, deepsjeng 35, lbm 0,
    // MSER 54, SIFT 0, microbenchmark 0. The workload models reproduce the
    // ordering and the zero entries; absolute counts are close by design.
    let c = cfg();
    let points = |b: Benchmark| build_plan(b, &c, Scheme::Sip).len();

    assert_eq!(points(Benchmark::Lbm), 0, "lbm");
    assert_eq!(points(Benchmark::Sift), 0, "SIFT");
    assert_eq!(points(Benchmark::Microbenchmark), 0, "microbenchmark");

    let mcf2006 = points(Benchmark::Mcf2006);
    let mcf = points(Benchmark::Mcf);
    let xz = points(Benchmark::Xz);
    let deepsjeng = points(Benchmark::Deepsjeng);
    let mser = points(Benchmark::Mser);

    assert!(
        (100..=120).contains(&mcf2006),
        "mcf.2006: {mcf2006} (paper 114)"
    );
    assert!((90..=118).contains(&mcf), "mcf: {mcf} (paper 99)");
    assert!((40..=50).contains(&xz), "xz: {xz} (paper 46)");
    assert!(
        (30..=45).contains(&deepsjeng),
        "deepsjeng: {deepsjeng} (paper 35)"
    );
    assert!((45..=57).contains(&mser), "MSER: {mser} (paper 54)");
    // Ordering, as in the paper.
    assert!(mcf2006 >= mcf && mcf > mser && mser > xz && xz > deepsjeng);
}

#[test]
fn fortran_and_omnetpp_get_empty_plans() {
    let c = cfg();
    for b in [
        Benchmark::Bwaves,
        Benchmark::Roms,
        Benchmark::Wrf,
        Benchmark::Omnetpp,
    ] {
        assert!(
            build_plan(b, &c, Scheme::Sip).is_empty(),
            "{b}: the paper's prototype cannot instrument it"
        );
    }
}

#[test]
fn plans_are_empty_for_non_sip_schemes() {
    let c = cfg();
    for scheme in [Scheme::Baseline, Scheme::Dfp, Scheme::DfpStop] {
        assert!(build_plan(Benchmark::Deepsjeng, &c, scheme).is_empty());
    }
}

#[test]
fn train_profile_transfers_to_ref_input() {
    // Sites selected on the train input must still be the faulting sites
    // on the ref input: the ref-run fault reduction proves the transfer.
    let c = cfg();
    let plan = build_plan(Benchmark::Deepsjeng, &c, Scheme::Sip);
    assert!(!plan.is_empty());

    // Profile the *ref* input independently and compare selections.
    let ref_profile = profile_stream(
        Benchmark::Deepsjeng.build(InputSet::Ref, c.scale, c.seed),
        c.epc_pages as usize,
    );
    let ref_plan = InstrumentationPlan::from_profile(&ref_profile, c.sip);
    let train_sites = plan.sites();
    let ref_sites = ref_plan.sites();
    let overlap = train_sites.iter().filter(|s| ref_sites.contains(s)).count();
    assert!(
        overlap * 10 >= train_sites.len() * 8,
        "only {overlap}/{} train-selected sites remain hot on ref",
        train_sites.len()
    );
}

#[test]
fn threshold_sweep_has_the_fig9_shape() {
    // Fig. 9: too-aggressive thresholds instrument hot loops (check
    // overhead), too-conservative ones miss irregular sites. The selected
    // point count must decrease monotonically with the threshold.
    let c = cfg();
    let profile = profile_stream(
        Benchmark::Deepsjeng.build(InputSet::Train, c.scale, c.seed),
        c.epc_pages as usize,
    );
    let mut last = usize::MAX;
    for threshold in [0.0, 0.01, 0.05, 0.2, 0.5, 0.99] {
        let plan = InstrumentationPlan::from_profile(
            &profile,
            SipConfig::paper_defaults().with_threshold(threshold),
        );
        assert!(
            plan.len() <= last,
            "selection must shrink as the threshold rises"
        );
        last = plan.len();
    }
    assert_eq!(last, 0, "a ≈100% threshold instruments nothing");
}

#[test]
fn tcb_growth_is_small() {
    // §5.5: the notify function is 23 LoC; per-benchmark TCB growth is the
    // function plus the inserted call sites.
    let c = cfg();
    let plan = build_plan(Benchmark::Deepsjeng, &c, Scheme::Sip);
    let loc = plan.tcb_loc_estimate();
    assert!(loc >= sgx_sip::NOTIFY_FUNCTION_LOC);
    assert!(
        loc < 500,
        "TCB growth must stay tiny ({loc} LoC) — the paper's core argument vs Eleos/CoSMIX"
    );
}
