//! Chrome-trace export regression tests (DESIGN.md §4.4).
//!
//! The rendered trace for one fixed small run is pinned as a golden file
//! under `tests/golden/` (regenerate with `SGX_GOLDEN_UPDATE=1 cargo test
//! --test chrome_trace`), campaign timeline files are byte-identical
//! regardless of worker count, and every flow arrow the renderer draws
//! references two emitted spans.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sgx_preloading::kernel::{EventKind, LoggedEvent};
use sgx_preloading::prelude::*;
use sgx_preloading::{render_chrome_trace, CollectingSink};

const UPDATE_ENV: &str = "SGX_GOLDEN_UPDATE";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The fixed small run the golden trace pins: DFP on the microbenchmark,
/// tiny scale — a few hundred events with faults, preloads and hits.
fn small_run_events() -> Vec<LoggedEvent> {
    let cfg = SimConfig::at_scale(Scale::new(16_384));
    let (sink, collected) = CollectingSink::new();
    SimRun::new(&cfg)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(sink))
        .run_one()
        .expect("DFP on the microbenchmark");
    let events = collected.borrow().clone();
    events
}

#[test]
fn chrome_trace_matches_golden() {
    let got = render_chrome_trace(&small_run_events());
    let path = golden_path("timeline_small.chrome.json");
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden trace");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path:?} ({e}); regenerate with {UPDATE_ENV}=1")
    });
    assert_eq!(
        got, want,
        "chrome trace diverged from the golden; if intentional, regenerate \
         with {UPDATE_ENV}=1"
    );
}

/// Pulls the `"id":N` field out of a rendered flow-arrow line.
fn flow_id(line: &str) -> u64 {
    let at = line.find("\"id\":").expect("flow line carries an id") + 5;
    line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("id is a number")
}

#[test]
fn every_flow_arrow_references_two_emitted_spans() {
    let events = small_run_events();
    let emitted: BTreeSet<u64> = events.iter().map(|e| e.span.raw()).collect();
    let json = render_chrome_trace(&events);

    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();
    for line in json.lines() {
        if line.contains("\"ph\":\"s\"") {
            starts.push(flow_id(line));
        } else if line.contains("\"ph\":\"f\"") {
            finishes.push(flow_id(line));
        }
    }
    assert!(!starts.is_empty(), "a DFP run draws causal arrows");
    assert_eq!(
        starts, finishes,
        "every flow start pairs with a finish carrying the same id, in order"
    );
    for id in &starts {
        // The arrow's id is the child span; it and its parent were both
        // emitted (the renderer drops links to spans absent from the
        // stream).
        assert!(emitted.contains(id), "flow id {id} was never emitted");
        let child = events
            .iter()
            .find(|e| e.span.raw() == *id && e.parent.is_some())
            .unwrap_or_else(|| panic!("flow id {id} has no event with a parent"));
        let parent = child.parent.expect("filtered above").raw();
        assert!(
            emitted.contains(&parent),
            "flow {id} parent {parent} missing"
        );
    }
}

/// The golden run's event stream itself is well-formed: it ends with the
/// one and only `RunEnd`, and every parent link resolves.
#[test]
fn small_run_stream_is_well_formed() {
    let events = small_run_events();
    let emitted: BTreeSet<u64> = events.iter().map(|e| e.span.raw()).collect();
    for e in &events {
        if let Some(p) = e.parent {
            assert!(emitted.contains(&p.raw()), "{} parent unresolved", e.what);
        }
    }
    let run_ends = events
        .iter()
        .filter(|e| e.what == EventKind::RunEnd)
        .count();
    assert_eq!(run_ends, 1);
    assert_eq!(events.last().expect("non-empty").what, EventKind::RunEnd);
}

fn timeline_campaign(dir: &Path) -> Campaign {
    Campaign::grid(
        "timelined",
        11,
        &[Benchmark::Microbenchmark],
        &[Scheme::Baseline, Scheme::Dfp],
        SimConfig::at_scale(Scale::new(16_384)),
    )
    .with_timeline_dir(dir)
}

/// `Campaign::with_timeline_dir` drops one chrome trace and one gauge
/// series per cell, named by cell index + label, with identical bytes no
/// matter how many workers ran the grid.
#[test]
fn campaign_timeline_files_are_stable_under_jobs() {
    let base = std::env::temp_dir().join("sgx_chrome_trace_jobs_test");
    let _ = std::fs::remove_dir_all(&base);
    let serial_dir = base.join("serial");
    let jobs_dir = base.join("jobs");
    timeline_campaign(&serial_dir)
        .run_serial()
        .expect("serial campaign run failed");
    timeline_campaign(&jobs_dir)
        .run_with_jobs(4)
        .expect("parallel campaign run failed");

    let names = |dir: &Path| -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(dir)
            .expect("timeline dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    let serial = names(&serial_dir);
    assert_eq!(
        serial,
        [
            "000_microbenchmark-baseline.chrome.json",
            "000_microbenchmark-baseline.series.csv",
            "001_microbenchmark-DFP.chrome.json",
            "001_microbenchmark-DFP.series.csv",
        ]
    );
    assert_eq!(serial, names(&jobs_dir));
    for name in &serial {
        let a = std::fs::read(serial_dir.join(name)).unwrap();
        let b = std::fs::read(jobs_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name}: bytes diverged between serial and 4 workers");
        if name.ends_with(".chrome.json") {
            let text = String::from_utf8(a).expect("trace is UTF-8");
            assert!(text.starts_with("{\"displayTimeUnit\""), "{name}");
            assert!(text.trim_end().ends_with("]}"), "{name}: truncated");
        } else {
            let text = String::from_utf8(a).expect("series is UTF-8");
            assert!(text.starts_with("at,epc_resident,"), "{name}: header");
            assert!(text.lines().count() > 1, "{name}: no samples");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
