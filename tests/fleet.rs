//! Golden-report regression and determinism harness for the fleet
//! simulator.
//!
//! A small fixed fleet runs once serially and once on four workers; the
//! canonical JSON must (a) be byte-identical between the two (host
//! sharding is bit-invisible) and (b) match the checked-in golden report
//! under `tests/golden/`. A separate accounting check pins the fleet
//! totals to the sum of the per-host kernel books.
//!
//! When an intentional change shifts the numbers, regenerate with:
//!
//! ```text
//! SGX_GOLDEN_UPDATE=1 cargo test --test fleet
//! ```

use std::path::PathBuf;

use sgx_preloading::prelude::*;

/// Environment variable that switches the harness from compare to
/// regenerate.
const UPDATE_ENV: &str = "SGX_GOLDEN_UPDATE";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The fixed fleet the golden file pins: four hosts × three services
/// under bursty arrivals, least-loaded placement, and an idle timeout so
/// lifecycle (teardown + respawn) shows up in the report.
fn golden_fleet() -> FleetSpec {
    FleetSpec::new(4, 3)
        .seed(2020)
        .arrival(ArrivalProcess::Bursty {
            mean_gap: 262_144,
            burst: 4,
        })
        .placement(PlacementPolicy::LeastLoaded)
        .duration(1 << 23)
        .idle_timeout(1 << 20)
        .build()
        .expect("golden fleet spec must validate")
}

#[test]
fn fleet_report_is_byte_identical_across_worker_counts() {
    let spec = golden_fleet();
    let serial = spec.run(1).expect("serial fleet run failed");
    let sharded = spec.run(4).expect("sharded fleet run failed");
    assert_eq!(
        serial.to_canonical_json(),
        sharded.to_canonical_json(),
        "host sharding leaked into the fleet report"
    );

    let path = golden_path("fleet_small.json");
    let got = serial.to_canonical_json();
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::write(&path, &got).expect("cannot write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with {UPDATE_ENV}=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "fleet report drifted from tests/golden/fleet_small.json; if the \
         change is intentional, regenerate with {UPDATE_ENV}=1"
    );
}

#[test]
fn fleet_books_balance_against_per_host_kernels() {
    let report = golden_fleet().run(2).expect("fleet run failed");
    // The run exercised every lifecycle path the golden is meant to pin.
    assert!(report.requests > 0, "golden fleet served no requests");
    assert!(report.teardowns > 0, "idle timeout never engaged");
    assert!(report.spawns > report.teardowns, "respawns missing");
    // Fleet totals are exactly the sum of the per-host kernel books.
    assert_eq!(report.accounting_residual, 0);
    let hosts = &report.host_reports;
    assert_eq!(hosts.len(), report.hosts);
    assert_eq!(
        report.total_cycles,
        hosts.iter().map(|h| h.end_cycles).sum::<u64>()
    );
    assert_eq!(report.faults, hosts.iter().map(|h| h.faults).sum::<u64>());
    assert_eq!(
        report.requests,
        hosts.iter().map(|h| h.requests).sum::<u64>()
    );
    for h in hosts {
        assert_eq!(
            h.attribution.total(),
            h.end_cycles,
            "host {} cycle attribution does not cover its clock",
            h.index
        );
    }
    // Every served (non-shed) request recorded exactly one latency.
    assert_eq!(report.latency.count, report.requests - report.shed);
}
