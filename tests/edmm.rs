//! EDMM dynamic-EPC invariants (DESIGN.md §8).
//!
//! The grow-before-evict contract: while every enclave is below its
//! committed-page ceiling the background reclaimer stays parked and
//! first-touch faults are serviced by EAUG instead of the swap path;
//! every EAUG cycle lands in the demand-fault attribution bucket and the
//! books still sum to the run total; the streamed event counts still
//! reconcile with `KernelStats` under chaos; and configurations that do
//! not opt into EDMM are bit-identical to a kernel that has never heard
//! of it.

use sgx_preloading::epc::EpcSizing;
use sgx_preloading::kernel::{Kernel, KernelConfig, Watermarks};
use sgx_preloading::{
    Benchmark, ChaosPreset, CountingSink, Cycles, NoPredictor, ProcessId, Scale, Scheme, SimConfig,
    SimRun, VirtPage,
};

const DIVERSE: [Benchmark; 4] = [
    Benchmark::KvStore,
    Benchmark::PhaseShift,
    Benchmark::GraphFrontier,
    Benchmark::MlInference,
];

/// A small kernel whose watermarks force the baseline reclaimer to work:
/// 64 EPC pages, reclaim starts below 16 free and runs until 32.
fn small_kernel(edmm: Option<EpcSizing>) -> Kernel {
    let mut cfg = KernelConfig::new(64)
        .with_watermarks(Watermarks::new(16, 32, 64).expect("low < high <= capacity"));
    if let Some(sizing) = edmm {
        cfg = cfg.with_edmm(sizing);
    }
    Kernel::new(cfg, Box::new(NoPredictor))
}

/// Faults every page of `[0, pages)` in order and returns the clock.
fn touch_all(kernel: &mut Kernel, pages: u64) -> Cycles {
    let pid = ProcessId(0);
    let mut now = Cycles::ZERO;
    for p in 0..pages {
        let g = VirtPage::new(p);
        if kernel.app_access(now, pid, g).is_none() {
            now = kernel.page_fault(now, pid, g).resume_at;
        }
    }
    now
}

#[test]
fn no_evictions_below_the_ceiling_where_baseline_reclaims() {
    // 60 pages into a 64-page EPC: the baseline crosses the 16-free
    // watermark and starts evicting; EDMM stays below its physical
    // ceiling, so the reclaimer never wakes and every fault is an EAUG.
    let mut base = small_kernel(None);
    base.register_enclave(ProcessId(0), 60).unwrap();
    touch_all(&mut base, 60);
    assert!(
        base.stats().background_evictions > 0,
        "the baseline watermark reclaimer must have worked"
    );
    assert!(
        base.edmm_stats().is_none(),
        "no EDMM telemetry without EDMM"
    );

    let mut edmm = small_kernel(Some(EpcSizing::physical()));
    edmm.register_enclave(ProcessId(0), 60).unwrap();
    touch_all(&mut edmm, 60);
    assert_eq!(
        edmm.stats().background_evictions,
        0,
        "reclaimer stays parked"
    );
    assert_eq!(edmm.stats().foreground_evictions, 0);
    let stats = *edmm.edmm_stats().expect("EDMM telemetry present");
    assert_eq!(stats.eaug_faults, 60, "every first touch grows");
    assert_eq!(stats.denied_at_ceiling, 0);
    assert_eq!(stats.committed_peak, 60);
    assert_eq!(edmm.edmm_committed(0), 60);
    assert_eq!(edmm.stats().demand_loads, 60, "EAUGs count as demand loads");
}

#[test]
fn growth_stops_at_the_configured_ceiling_and_swap_takes_over() {
    let mut k = small_kernel(Some(EpcSizing::physical().with_ceiling(16)));
    k.register_enclave(ProcessId(0), 60).unwrap();
    touch_all(&mut k, 60);
    let stats = *k.edmm_stats().unwrap();
    assert_eq!(stats.eaug_faults, 16, "exactly the ceiling grows by EAUG");
    assert_eq!(
        stats.denied_at_ceiling, 44,
        "each remaining first touch is denied exactly once"
    );
    // Once at the ceiling the classic watermark reclaimer resumes.
    assert!(
        k.stats().background_evictions > 0,
        "swap-based reclamation must take over at the ceiling"
    );
    assert_eq!(stats.eaug_cycles, 16 * k.costs().eaug.raw());
}

#[test]
fn zero_ceiling_disables_growth_and_matches_costs() {
    let mut k = small_kernel(Some(EpcSizing::physical().with_ceiling(0)));
    k.register_enclave(ProcessId(0), 60).unwrap();
    touch_all(&mut k, 60);
    let stats = *k.edmm_stats().unwrap();
    assert_eq!(stats.eaug_faults, 0);
    assert_eq!(stats.eaug_cycles, 0);
    assert!(stats.denied_at_ceiling >= 60, "every first touch is denied");
}

#[test]
fn refaults_after_eviction_reload_from_swap_not_eaug() {
    // Ceiling 16 on a 64-page EPC with an 80-page walk done twice: the
    // second pass refaults evicted pages, and none of those refaults may
    // EAUG again — growth is first-touch only.
    let mut k = Kernel::new(
        KernelConfig::new(24)
            .with_watermarks(Watermarks::new(4, 8, 24).unwrap())
            .with_edmm(EpcSizing::physical().with_ceiling(16)),
        Box::new(NoPredictor),
    );
    k.register_enclave(ProcessId(0), 80).unwrap();
    let pid = ProcessId(0);
    let mut now = Cycles::ZERO;
    for _ in 0..2 {
        for p in 0..80 {
            let g = VirtPage::new(p);
            if k.app_access(now, pid, g).is_none() {
                now = k.page_fault(now, pid, g).resume_at;
            }
        }
    }
    let stats = *k.edmm_stats().unwrap();
    assert_eq!(stats.eaug_faults, 16, "EAUG never fires twice for a page");
    assert_eq!(k.edmm_committed(0), 80, "all 80 pages were resident once");
    assert_eq!(stats.committed_peak, 80);
}

#[test]
fn eaug_cycles_land_in_demand_fault_attribution_and_books_sum() {
    let mut k = small_kernel(Some(EpcSizing::physical()));
    k.register_enclave(ProcessId(0), 60).unwrap();
    let end = touch_all(&mut k, 60);
    let stats = *k.edmm_stats().unwrap();
    assert!(stats.eaug_cycles > 0);
    let attr = k.attribution(end);
    assert!(
        attr.demand_fault >= stats.eaug_cycles,
        "EAUG is billed to the demand-fault bucket"
    );
    assert_eq!(attr.total(), end.raw(), "books must sum to the run total");
}

#[test]
fn edmm_scheme_attribution_reconciles_on_every_diversity_family() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    for bench in DIVERSE {
        for scheme in [Scheme::Edmm, Scheme::EdmmDfpStop] {
            let r = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            assert_eq!(
                r.attribution.total(),
                r.total_cycles.raw(),
                "{}/{}: attribution must sum to total",
                bench.name(),
                scheme.name()
            );
        }
    }
}

#[test]
fn stream_counts_reconcile_with_kernel_stats_under_chaos() {
    let base = SimConfig::at_scale(Scale::new(64));
    let cfg = base.with_chaos(ChaosPreset::Light.schedule(base.seed));
    for scheme in [Scheme::Edmm, Scheme::EdmmDfpStop] {
        for bench in DIVERSE {
            let (sink, counts) = CountingSink::new();
            let r = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .sink(Box::new(sink))
                .run_one()
                .unwrap();
            let ev = counts.get();
            let ctx = format!("{}/{}", bench.name(), scheme.name());
            assert_eq!(ev.faults, r.faults, "{ctx}: faults");
            assert_eq!(ev.faults_resolved, r.faults, "{ctx}: every fault resolves");
            assert_eq!(
                ev.background_evictions, r.background_evictions,
                "{ctx}: background evictions"
            );
            assert_eq!(
                ev.foreground_evictions, r.foreground_evictions,
                "{ctx}: foreground evictions"
            );
            assert!(
                ev.demand_loads <= ev.faults,
                "{ctx}: demand loads (EAUG included) are a subset of faults"
            );
        }
    }
}

#[test]
fn non_edmm_schemes_ignore_the_sizing_knob_bit_identically() {
    let cfg = SimConfig::at_scale(Scale::new(64));
    let capped = cfg.with_epc_sizing(EpcSizing::physical().with_ceiling(8));
    for scheme in [Scheme::Baseline, Scheme::DfpStop, Scheme::Hybrid] {
        for bench in [Benchmark::KvStore, Benchmark::Lbm] {
            let plain = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            let knobbed = SimRun::new(&capped)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            let (mut a, mut b) = (String::new(), String::new());
            plain.write_json(&mut a);
            knobbed.write_json(&mut b);
            assert_eq!(
                a,
                b,
                "{}/{}: sizing must be inert off the edmm schemes",
                bench.name(),
                scheme.name()
            );
        }
    }
}

#[test]
fn edmm_beats_baseline_on_a_growth_friendly_family() {
    // Growth-friendly provisioning: EPC doubled so the kvstore footprint
    // nearly fits. The static watermark reclaimer still evicts eagerly;
    // EDMM defers reclaim until the committed budget is exhausted.
    let base_cfg = SimConfig::at_scale(Scale::new(32));
    let cfg = base_cfg.with_epc_pages(base_cfg.epc_pages * 2);
    let base = SimRun::new(&cfg)
        .scheme(Scheme::Baseline)
        .bench(Benchmark::KvStore)
        .run_one()
        .unwrap();
    let edmm = SimRun::new(&cfg)
        .scheme(Scheme::Edmm)
        .bench(Benchmark::KvStore)
        .run_one()
        .unwrap();
    let both = SimRun::new(&cfg)
        .scheme(Scheme::EdmmDfpStop)
        .bench(Benchmark::KvStore)
        .run_one()
        .unwrap();
    assert!(
        edmm.background_evictions + edmm.foreground_evictions
            < base.background_evictions + base.foreground_evictions,
        "growth must replace evictions: edmm {}+{} vs baseline {}+{}",
        edmm.background_evictions,
        edmm.foreground_evictions,
        base.background_evictions,
        base.foreground_evictions
    );
    assert!(
        both.total_cycles < edmm.total_cycles,
        "composing DFP-stop on top must pay for itself: {} vs {}",
        both.total_cycles,
        edmm.total_cycles
    );
}
