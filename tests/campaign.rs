//! Golden-report regression harness for the campaign engine.
//!
//! A small fixed campaign runs at reduced scale; its canonical JSON must
//! (a) be byte-identical between serial and multi-worker execution, and
//! (b) match the checked-in golden report under `tests/golden/`.
//!
//! When an intentional change shifts the numbers, regenerate the golden
//! file with:
//!
//! ```text
//! SGX_GOLDEN_UPDATE=1 cargo test --test campaign
//! ```

use std::path::PathBuf;

use sgx_preloading::prelude::*;

/// Environment variable that switches the harness from compare to
/// regenerate.
const UPDATE_ENV: &str = "SGX_GOLDEN_UPDATE";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The fixed campaign the golden file pins: two benchmarks across three
/// schemes at a tiny scale, per-cell seeding (the default), fixed seed.
fn golden_campaign() -> Campaign {
    Campaign::grid(
        "golden_small",
        2020,
        &[Benchmark::Microbenchmark, Benchmark::Deepsjeng],
        &[Scheme::Baseline, Scheme::DfpStop, Scheme::Sip],
        SimConfig::at_scale(Scale::new(64)),
    )
}

/// The workload-diversity grid: the four non-SPEC scenario families
/// across the full kernel-scheme grid, pinned by its own golden file.
fn diverse_campaign() -> Campaign {
    Campaign::grid(
        "golden_diverse",
        2020,
        &Benchmark::DIVERSE,
        &Scheme::ALL,
        SimConfig::at_scale(Scale::new(64)),
    )
}

/// The predictor-zoo grid: every shipped predictor across the four
/// diversity families and the EDMM rival arms, pinned by its own golden
/// file. The EPC is provisioned growth-friendly — the phase-shift
/// footprint *nearly* fits — so deferred reclamation has room to pay off.
fn predictor_zoo_campaign() -> Campaign {
    let base = SimConfig::at_scale(Scale::new(32));
    Campaign::predictor_grid(
        "golden_predictor_zoo",
        2020,
        &Benchmark::DIVERSE,
        &[
            Scheme::Baseline,
            Scheme::DfpStop,
            Scheme::Edmm,
            Scheme::EdmmDfpStop,
        ],
        base.with_epc_pages(2900),
        &PredictorKind::ALL,
    )
}

/// Shared compare-or-regenerate harness for golden campaign reports.
fn check_golden(got: &str, name: &str) {
    let path = golden_path(name);
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, got).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `{UPDATE_ENV}=1 cargo test --test campaign` to generate it",
            path.display()
        )
    });
    assert_eq!(
        got, &want,
        "campaign output drifted from {name}; if the change is intentional, \
         regenerate with `{UPDATE_ENV}=1 cargo test --test campaign`"
    );
}

#[test]
fn parallel_report_is_field_identical_to_serial() {
    let campaign = golden_campaign();
    let serial = campaign.run_serial().expect("serial campaign run failed");
    let parallel = campaign
        .run_with_jobs(4)
        .expect("parallel campaign run failed");
    assert_eq!(serial.cells.len(), 6);
    assert_eq!(parallel.cells.len(), 6);
    for (s, p) in serial.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        assert_eq!(s.seed, p.seed, "cell {} seed diverged", s.label);
        assert_eq!(s.report, p.report, "cell {} report diverged", s.label);
        assert_eq!(s.events, p.events, "cell {} telemetry diverged", s.label);
    }
    assert_eq!(
        serial.to_canonical_json(),
        parallel.to_canonical_json(),
        "canonical JSON must be byte-identical regardless of worker count"
    );
}

#[test]
fn worker_count_does_not_change_canonical_json() {
    let campaign = golden_campaign();
    let reference = campaign
        .run_serial()
        .expect("serial campaign run failed")
        .to_canonical_json();
    for jobs in [2, 3, 4, 8] {
        assert_eq!(
            campaign
                .run_with_jobs(jobs)
                .expect("parallel campaign run failed")
                .to_canonical_json(),
            reference,
            "{jobs} workers diverged from serial"
        );
    }
}

#[test]
fn campaign_matches_golden_report() {
    let got = golden_campaign()
        .run_with_jobs(4)
        .expect("campaign run failed")
        .to_canonical_json();
    let path = golden_path("campaign_small.json");
    if std::env::var_os(UPDATE_ENV).is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, &got).expect("write golden file");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `{UPDATE_ENV}=1 cargo test --test campaign` to generate it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "campaign output drifted from the golden report; if the change is \
         intentional, regenerate with `{UPDATE_ENV}=1 cargo test --test campaign`"
    );
}

#[test]
fn diverse_campaign_matches_golden_report_at_any_worker_count() {
    let campaign = diverse_campaign();
    let serial = campaign
        .run_serial()
        .expect("serial diverse campaign failed");
    assert_eq!(
        serial.cells.len(),
        Benchmark::DIVERSE.len() * Scheme::ALL.len(),
        "full scheme grid over the four diversity families"
    );
    let got = serial.to_canonical_json();
    assert_eq!(
        got,
        campaign
            .run_with_jobs(4)
            .expect("parallel diverse campaign failed")
            .to_canonical_json(),
        "diverse grid must be byte-identical across worker counts"
    );
    check_golden(&got, "campaign_diverse.json");
}

#[test]
fn predictor_zoo_matches_golden_report_at_any_worker_count() {
    let campaign = predictor_zoo_campaign();
    let serial = campaign.run_serial().expect("serial zoo campaign failed");
    assert_eq!(
        serial.cells.len(),
        Benchmark::DIVERSE.len() * 4 * PredictorKind::ALL.len(),
        "four schemes and the full predictor menu over the diversity families"
    );
    let got = serial.to_canonical_json();
    assert_eq!(
        got,
        campaign
            .run_with_jobs(4)
            .expect("parallel zoo campaign failed")
            .to_canonical_json(),
        "zoo grid must be byte-identical across worker counts"
    );
    check_golden(&got, "campaign_predictor_zoo.json");
}

#[test]
fn edmm_pays_off_on_a_growth_friendly_family_in_the_pinned_report() {
    let report = predictor_zoo_campaign()
        .run_with_jobs(4)
        .expect("zoo campaign failed");
    let cell = |label: &str| {
        report
            .cells
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("no cell labelled {label}"))
    };
    let evictions = |c: &CellReport| c.report.background_evictions + c.report.foreground_evictions;
    let base = cell("phase-shift/baseline/pred=multi-stream");
    let edmm = cell("phase-shift/edmm/pred=multi-stream");
    let both = cell("phase-shift/edmm+dfp-stop/pred=multi-stream");
    assert!(
        evictions(edmm) < evictions(base),
        "deferred reclaim must shed demand evictions: edmm {} vs baseline {}",
        evictions(edmm),
        evictions(base)
    );
    assert!(
        both.report.total_cycles < edmm.report.total_cycles,
        "DFP-stop on top of EDMM must pay for itself: {} vs {}",
        both.report.total_cycles,
        edmm.report.total_cycles
    );
}

#[test]
fn full_json_superset_carries_timing_context() {
    let report = golden_campaign()
        .run_with_jobs(2)
        .expect("campaign run failed");
    let full = report.to_json();
    assert!(full.contains("\"jobs\":2"));
    assert!(full.contains("\"wall_nanos\""));
    let canonical = report.to_canonical_json();
    assert!(!canonical.contains("wall_nanos"));
}
