//! Acceptance bar for the multi-tenant EPC scheduling layer (DESIGN.md
//! §4.3). A sequential victim resweeps a working set that fits inside its
//! 1:1 share while a mixed-blood aggressor streams far past its own.
//! Unpartitioned, global CLOCK evicts the victim's set between sweeps;
//! under `TenantPolicy::fair` the quota-aware reclaimer takes pages from
//! the over-share aggressor instead. The bounds pinned here are the
//! regression contract behind `benches/fairness_isolation.rs`.

use sgx_preloading::prelude::*;
use sgx_preloading::workloads::{AccessIter, PageRange, SequentialScan, SiteRange};

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::new(32))
}

/// The victim resweeps 40% of the EPC — comfortably inside a 1:1 soft
/// share (50%) — slowly enough that its pages cool between sweeps.
fn victim(c: &SimConfig) -> AppSpec {
    let fp = c.epc_pages * 2 / 5;
    let workload: AccessIter = Box::new(SequentialScan::new(
        PageRange::first(fp),
        40,
        Cycles::new(20_000),
        SiteRange::single(0),
    ));
    AppSpec::new("victim", fp, workload)
        .build()
        .expect("non-empty ELRANGE")
}

fn aggressor(c: &SimConfig) -> AppSpec {
    let bench = Benchmark::MixedBlood;
    AppSpec::new(
        "aggressor",
        bench.elrange_pages(c.scale),
        bench.build(InputSet::Ref, c.scale, c.seed + 1),
    )
    .build()
    .expect("non-empty ELRANGE")
}

/// Weights 1:1: the victim's fault cycles and channel wait stay inside
/// pinned bounds of its solo run, while the over-share aggressor absorbs
/// the eviction and admission pressure.
#[test]
fn fair_policy_pins_victim_interference_to_its_solo_run() {
    let c = cfg();
    let scheme = Scheme::Dfp;
    let solo = SimRun::new(&c)
        .scheme(scheme)
        .app(victim(&c))
        .run_one()
        .expect("solo victim");
    let shared = SimRun::new(&c)
        .scheme(scheme)
        .apps(vec![victim(&c), aggressor(&c)])
        .run()
        .expect("unpartitioned pair");
    let fc = c.with_tenant_policy(TenantPolicy::fair(2, c.epc_pages));
    let fair = SimRun::new(&fc)
        .scheme(scheme)
        .apps(vec![victim(&fc), aggressor(&fc)])
        .run()
        .expect("fair pair");

    // The problem exists: unpartitioned, the aggressor evicts the victim's
    // working set between sweeps and the victim re-faults on it.
    assert!(
        shared[0].faults > solo.faults,
        "unpartitioned victim re-faults ({} vs {} solo)",
        shared[0].faults,
        solo.faults
    );

    // Quota-aware reclamation restores the victim's set exactly: cold
    // faults only, as in the solo run.
    assert_eq!(
        fair[0].faults, solo.faults,
        "fair 1:1 keeps the victim at its cold-fault minimum"
    );

    // Pinned bound on fault cycles: within 8% of solo (measured 5.3%).
    assert!(
        fair[0].total_cycles.raw() * 100 <= solo.total_cycles.raw() * 108,
        "victim fault cycles {} exceed the pinned 1.08x of solo {}",
        fair[0].total_cycles,
        solo.total_cycles
    );
    assert!(
        fair[0].total_cycles <= shared[0].total_cycles,
        "the policy never leaves the victim worse than unpartitioned"
    );

    // Pinned bound on channel wait: at most 1% of the solo run's cycles
    // (measured 0.36%); solo waits are zero, so the bound is absolute.
    assert_eq!(solo.channel_wait_cycles, Cycles::ZERO, "solo never queues");
    assert!(
        fair[0].channel_wait_cycles.raw() <= solo.total_cycles.raw() / 100,
        "victim channel wait {} exceeds the pinned bound",
        fair[0].channel_wait_cycles
    );

    // The pressure lands on the over-share tenant: admission control sheds
    // only aggressor speculation, and its residency is clamped to the soft
    // share while the unpartitioned run let it take the whole EPC.
    assert_eq!(fair[0].preloads_shed, 0, "victim speculation is never shed");
    assert!(fair[1].preloads_shed > 0, "aggressor speculation is shed");
    let soft = c.epc_pages / 2;
    assert!(
        fair[1].residency_p99 <= soft,
        "aggressor residency p99 {} clamped to its soft share {soft}",
        fair[1].residency_p99
    );
    assert!(
        shared[1].residency_p99 > soft,
        "unpartitioned aggressor residency p99 {} overruns the share",
        shared[1].residency_p99
    );
}

/// An unset policy is the status quo, byte for byte: the tenant layer is
/// pure opt-in and `TenantPolicy::none` never perturbs a run.
#[test]
fn zero_policy_is_bit_identical_to_the_seed_behaviour() {
    let c = cfg();
    let none = c.with_tenant_policy(TenantPolicy::none());
    for scheme in [Scheme::Baseline, Scheme::Dfp, Scheme::Hybrid] {
        let plain = SimRun::new(&c)
            .scheme(scheme)
            .apps(vec![victim(&c), aggressor(&c)])
            .run()
            .expect("plain pair");
        let zeroed = SimRun::new(&none)
            .scheme(scheme)
            .apps(vec![victim(&none), aggressor(&none)])
            .run()
            .expect("zero-policy pair");
        assert_eq!(
            plain,
            zeroed,
            "{}: zero policy must be inert",
            scheme.name()
        );
    }
}
