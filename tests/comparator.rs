//! Integration checks for the §6 user-level paging comparator.

use sgx_preloading::{Benchmark, Cycles, Scale, Scheme, SimConfig, SimRun, UserPagingConfig};

#[test]
fn user_level_beats_hardware_paging_on_speed() {
    // The whole reason Eleos/CoSMIX exist: software swaps (~8k cycles)
    // against hardware faults (~64k). The paper's counterargument is
    // security/TCB, not speed.
    let cfg = SimConfig::at_scale(Scale::DEV);
    for bench in [Benchmark::Lbm, Benchmark::Deepsjeng] {
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        let user = SimRun::new(&cfg)
            .scheme(Scheme::UserLevel)
            .bench(bench)
            .run_one()
            .unwrap();
        let hybrid = SimRun::new(&cfg)
            .scheme(Scheme::Hybrid)
            .bench(bench)
            .run_one()
            .unwrap();
        assert!(
            user.improvement_over(&base) > hybrid.improvement_over(&base),
            "{bench}: the user-level runtime should win on raw speed"
        );
        assert!(
            user.improvement_over(&base) > 0.3,
            "{bench}: sizable win expected"
        );
        // And it instruments *every* execution — the cost the paper avoids.
        assert_eq!(user.sip_checks, user.executions);
    }
}

#[test]
fn user_level_check_cost_can_erase_the_win() {
    // Without the software TLB (CoSMIX's point), per-access checks get
    // expensive enough to matter on check-heavy code.
    let cfg = SimConfig::at_scale(Scale::DEV);
    let cheap = SimRun::new(&cfg)
        .scheme(Scheme::UserLevel)
        .bench(Benchmark::Mcf)
        .run_one()
        .unwrap();
    let pricey_cfg = cfg.with_user_paging(
        UserPagingConfig::defaults_for(cfg.epc_pages)
            .with_check(Cycles::new(400), Cycles::new(400)),
    );
    let pricey = SimRun::new(&pricey_cfg)
        .scheme(Scheme::UserLevel)
        .bench(Benchmark::Mcf)
        .run_one()
        .unwrap();
    assert!(
        pricey.total_cycles > cheap.total_cycles,
        "higher check costs must show up"
    );
}

#[test]
fn user_level_is_deterministic_and_fault_free() {
    let cfg = SimConfig::at_scale(Scale::DEV);
    let a = SimRun::new(&cfg)
        .scheme(Scheme::UserLevel)
        .bench(Benchmark::Mser)
        .run_one()
        .unwrap();
    let b = SimRun::new(&cfg)
        .scheme(Scheme::UserLevel)
        .bench(Benchmark::Mser)
        .run_one()
        .unwrap();
    assert_eq!(a.total_cycles, b.total_cycles);
    // "Faults" here are software swaps; no AEX-style fault service exists.
    assert_eq!(a.faults_waited_inflight, 0);
    assert_eq!(a.preloads_started, 0);
}
