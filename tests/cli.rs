//! End-to-end tests of the `sgx-preload` command-line tool.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sgx-preload"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn sgx-preload");
    assert!(
        out.status.success(),
        "sgx-preload {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn run_err(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn sgx-preload");
    assert!(
        !out.status.success(),
        "sgx-preload {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

#[test]
fn list_names_all_benchmarks_and_schemes() {
    let out = run_ok(&["list"]);
    for name in ["microbenchmark", "lbm", "mcf.2006", "mixed-blood", "SIFT"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    assert!(out.contains("dfp-stop"));
    assert!(out.contains("(no SIP)"), "Fortran exclusions flagged");
}

#[test]
fn run_reports_improvement() {
    let out = run_ok(&["run", "--bench", "lbm", "--scheme", "dfp", "--scale", "dev"]);
    assert!(out.contains("lbm [DFP]"));
    assert!(out.contains("improvement over baseline: +"));
}

#[test]
fn run_respects_parameter_overrides() {
    // LOADLENGTH 1 must differ from LOADLENGTH 4 on lbm.
    let a = run_ok(&[
        "run",
        "--bench",
        "lbm",
        "--scheme",
        "dfp",
        "--scale",
        "dev",
        "--load-length",
        "1",
    ]);
    let b = run_ok(&[
        "run",
        "--bench",
        "lbm",
        "--scheme",
        "dfp",
        "--scale",
        "dev",
        "--load-length",
        "4",
    ]);
    assert_ne!(a, b);
}

#[test]
fn profile_shows_plan_and_sites() {
    let out = run_ok(&["profile", "--bench", "deepsjeng", "--scale", "dev"]);
    assert!(out.contains("instrumentation plan"));
    assert!(out.contains("top sites by irregular ratio"));
}

#[test]
fn trace_then_replay_roundtrip() {
    let dir = std::env::temp_dir().join("sgx_preload_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lbm.csv");
    let out = run_ok(&[
        "trace",
        "--bench",
        "lbm",
        "--scale",
        "dev",
        "-n",
        "800",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.contains("recorded 800 accesses"));
    let out = run_ok(&[
        "replay",
        "--trace",
        path.to_str().unwrap(),
        "--scheme",
        "dfp",
        "--scale",
        "dev",
    ]);
    assert!(out.contains("improvement over baseline"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_record_convert_replay_roundtrip() {
    let dir = std::env::temp_dir().join("sgx_preload_cli_sgxt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let sgxt = dir.join("kv.sgxt");
    let csv = dir.join("kv.csv");
    let sgxt2 = dir.join("kv2.sgxt");
    let bench_json = dir.join("replay_bench.json");

    // Record the full kvstore stream in the binary format.
    let out = run_ok(&[
        "trace",
        "record",
        "--bench",
        "kvstore",
        "--scale",
        "24",
        "--out",
        sgxt.to_str().unwrap(),
    ]);
    assert!(out.contains("recorded"), "{out}");

    // Convert .sgxt -> CSV -> .sgxt; the binary files must be identical.
    run_ok(&[
        "trace",
        "convert",
        "--in",
        sgxt.to_str().unwrap(),
        "--out",
        csv.to_str().unwrap(),
    ]);
    run_ok(&[
        "trace",
        "convert",
        "--in",
        csv.to_str().unwrap(),
        "--out",
        sgxt2.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read(&sgxt).unwrap(),
        std::fs::read(&sgxt2).unwrap(),
        ".sgxt -> CSV -> .sgxt must be byte-identical"
    );
    // The binary format earns its keep against the text format.
    let bin_len = std::fs::metadata(&sgxt).unwrap().len();
    let csv_len = std::fs::metadata(&csv).unwrap().len();
    assert!(
        bin_len * 2 < csv_len,
        ".sgxt ({bin_len} B) should be well under half the CSV ({csv_len} B)"
    );

    // Replay with the source declared and --diff: the replayed report
    // must match the generator run exactly.
    let out = run_ok(&[
        "trace",
        "replay",
        "--trace",
        sgxt.to_str().unwrap(),
        "--scale",
        "24",
        "--scheme",
        "dfp",
        "--source-bench",
        "kvstore",
        "--diff",
        "--bench-out",
        bench_json.to_str().unwrap(),
    ]);
    assert!(
        out.contains("replay matches the kvstore/DFP generator run exactly"),
        "{out}"
    );
    let json = std::fs::read_to_string(&bench_json).unwrap();
    for key in ["\"replayed_pages_per_sec\":", "\"bytes_per_access\":"] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_replay_rejects_corrupt_inputs_with_structured_errors() {
    let dir = std::env::temp_dir().join("sgx_preload_cli_corrupt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, bytes: &[u8]| {
        let p = dir.join(name);
        std::fs::write(&p, bytes).unwrap();
        p
    };

    // A valid .sgxt to corrupt: record a tiny benchmark first.
    let good = dir.join("good.sgxt");
    run_ok(&[
        "trace",
        "record",
        "--bench",
        "microbenchmark",
        "--scale",
        "24",
        "-n",
        "500",
        "--out",
        good.to_str().unwrap(),
    ]);
    let good_bytes = std::fs::read(&good).unwrap();

    let replay =
        |p: &std::path::Path| run_err(&["trace", "replay", "--trace", p.to_str().unwrap()]);

    // Truncated header.
    let p = write("trunc.sgxt", &good_bytes[..6]);
    assert!(
        replay(&p).contains("truncated .sgxt trace"),
        "truncated header"
    );
    // Truncated mid-stream.
    let p = write("cut.sgxt", &good_bytes[..good_bytes.len() - 3]);
    assert!(
        replay(&p).contains("truncated .sgxt trace"),
        "truncated body"
    );
    // Wrong version.
    let mut v = good_bytes.clone();
    v[4] = 9;
    let p = write("badver.sgxt", &v);
    assert!(
        replay(&p).contains("unsupported .sgxt version 9"),
        "bad version"
    );
    // A varint that never terminates (0xff forever) overruns.
    let mut o = good_bytes[..10].to_vec();
    o.extend([0xff; 12]);
    let p = write("overrun.sgxt", &o);
    assert!(replay(&p).contains("varint"), "varint overrun");
    // Trailing garbage after the last section.
    let mut t = good_bytes.clone();
    t.extend(b"junk");
    let p = write("trailing.sgxt", &t);
    assert!(replay(&p).contains("trailing garbage"), "trailing garbage");
    // A bad magic demotes the file to the CSV parser, which rejects it.
    let p = write("badmagic.sgxt", b"SGXU not a trace at all");
    assert!(replay(&p).contains("line 1"), "bad magic falls back to CSV");
    // Missing file.
    let err = run_err(&[
        "trace",
        "replay",
        "--trace",
        dir.join("absent.sgxt").to_str().unwrap(),
    ]);
    assert!(err.contains("cannot read"), "missing file: {err}");
    // Empty trace.
    let p = write("empty.csv", b"page,compute,site,repeats\n");
    assert!(replay(&p).contains("is empty"), "empty trace");
    // --diff without --source-bench cannot reproduce the generator.
    let err = run_err(&[
        "trace",
        "replay",
        "--trace",
        good.to_str().unwrap(),
        "--diff",
    ]);
    assert!(err.contains("--source-bench"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn timeline_streams_kernel_events() {
    let out = run_ok(&[
        "timeline",
        "--bench",
        "microbenchmark",
        "--scheme",
        "dfp",
        "--scale",
        "dev",
        "-n",
        "20",
    ]);
    assert!(out.contains("fault"));
    assert!(out.contains("demand-loaded"));
    assert!(out.contains("preload-start"), "DFP should preload:\n{out}");
}

#[test]
fn chaos_reports_slowdown_and_holds_invariants() {
    let dir = std::env::temp_dir().join("sgx_preload_cli_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("chaos.json");
    let out = run_ok(&[
        "chaos",
        "--bench",
        "microbenchmark",
        "--scheme",
        "dfp",
        "--scale",
        "48",
        "--preset",
        "light",
        "--chaos-seed",
        "5",
        "--json-out",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.contains("chaos microbenchmark/DFP:"),
        "summary line:\n{out}"
    );
    assert!(
        out.contains("invariants hold"),
        "clean exit states the contract:\n{out}"
    );
    let json = std::fs::read_to_string(&json_path).expect("chaos JSON written");
    for key in [
        "\"bench\":\"microbenchmark\"",
        "\"scheme\":\"DFP\"",
        "\"chaos\":{\"seed\":5",
        "\"baseline_total_cycles\":",
        "\"chaos_total_cycles\":",
        "\"slowdown\":",
        "\"invariants\":{\"violations\":[]}",
        "\"events\":{\"faults\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn chaos_schedule_knobs_override_the_preset() {
    // Two different drop rates must produce different runs.
    let base = [
        "chaos",
        "--bench",
        "lbm",
        "--scheme",
        "dfp",
        "--scale",
        "48",
        "--chaos-seed",
        "3",
    ];
    let mut a_args = base.to_vec();
    a_args.extend(["--drop", "0.5", "--retries", "2", "--backoff", "10000"]);
    let mut b_args = base.to_vec();
    b_args.extend(["--drop", "0.05", "--retries", "2", "--backoff", "10000"]);
    let a = run_ok(&a_args);
    let b = run_ok(&b_args);
    assert_ne!(a, b, "drop rate had no effect");
}

#[test]
fn chaos_exits_nonzero_on_envelope_violation_and_bad_flags() {
    // An impossible envelope: injection cannot *halve* total cycles.
    let err = run_err(&[
        "chaos",
        "--bench",
        "microbenchmark",
        "--scale",
        "48",
        "--preset",
        "heavy",
        "--max-slowdown",
        "0.5",
    ]);
    assert!(
        err.contains("exceeds --max-slowdown"),
        "envelope breach reported: {err}"
    );
    // Rate validation.
    let err = run_err(&["chaos", "--bench", "lbm", "--drop", "1.5"]);
    assert!(err.contains("must be in [0, 1]"), "{err}");
    // An all-zero schedule is refused (nothing to inject).
    let err = run_err(&["chaos", "--bench", "lbm"]);
    assert!(err.contains("all-zero"), "{err}");
    // The user-level scheme has no kernel to disturb.
    let err = run_err(&[
        "chaos",
        "--bench",
        "lbm",
        "--scheme",
        "user-level",
        "--preset",
        "light",
    ]);
    assert!(err.contains("user-level"), "{err}");
}

#[test]
fn helpful_errors() {
    assert!(run_err(&["run", "--scheme", "dfp"]).contains("missing --bench"));
    assert!(run_err(&["run", "--bench", "nope"]).contains("unknown benchmark"));
    assert!(run_err(&["run", "--bench", "lbm", "--scheme", "warp"]).contains("unknown scheme"));
    assert!(run_err(&["frobnicate"]).contains("unknown command"));
    assert!(run_err(&[]).contains("USAGE"));
    assert!(run_err(&["run", "--bench", "lbm", "--threshold", "7"]).contains("must be in [0, 1]"));
}
