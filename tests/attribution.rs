//! Property tests for the per-subsystem cycle attribution (DESIGN.md §4.4).
//!
//! The contract: the eight buckets are non-negative (they are `u64` by
//! construction) and sum *exactly* to the run's total cycles — no cycle is
//! counted twice and none goes missing — on every workload × scheme ×
//! chaos-preset combination. Schemes that never preload never bill the
//! preload buckets, and every resolved fault's causal parent is a preload
//! span.

use std::collections::BTreeSet;

use sgx_preloading::kernel::EventKind;
use sgx_preloading::{Benchmark, ChaosPreset, CollectingSink, Scale, Scheme, SimConfig, SimRun};

fn cfg(preset: ChaosPreset) -> SimConfig {
    let cfg = SimConfig::at_scale(Scale::new(64));
    match preset {
        ChaosPreset::None => cfg,
        _ => {
            let seed = cfg.seed;
            cfg.with_chaos(preset.schedule(seed))
        }
    }
}

#[test]
fn buckets_sum_to_total_on_every_workload_scheme_and_preset() {
    for bench in Benchmark::ALL {
        for scheme in Scheme::ALL {
            for preset in ChaosPreset::ALL {
                let r = SimRun::new(&cfg(preset))
                    .scheme(scheme)
                    .bench(bench)
                    .run_one()
                    .expect("kernel scheme on a known benchmark");
                let a = &r.attribution;
                assert_eq!(
                    a.total(),
                    r.total_cycles.raw(),
                    "{}/{}/{}: buckets must sum to the run total",
                    bench.name(),
                    scheme.name(),
                    preset.name(),
                );
                // `buckets()` walks every field exactly once: the table
                // view and the struct agree.
                let by_hand: u64 = a.buckets().iter().map(|&(_, v)| v).sum();
                assert_eq!(by_hand, a.total());
            }
        }
    }
}

#[test]
fn baseline_without_chaos_never_bills_preload_buckets() {
    for bench in Benchmark::ALL {
        let r = SimRun::new(&cfg(ChaosPreset::None))
            .bench(bench)
            .run_one()
            .expect("baseline on a known benchmark");
        assert_eq!(r.scheme, Scheme::Baseline);
        assert_eq!(
            r.attribution.wasted_preload,
            0,
            "{}: no predictor, nothing to waste",
            bench.name()
        );
        assert_eq!(r.attribution.preload_work, 0, "{}", bench.name());
    }
}

#[test]
fn user_level_attribution_reconciles_too() {
    let r = SimRun::new(&SimConfig::at_scale(Scale::new(64)))
        .scheme(Scheme::UserLevel)
        .bench(Benchmark::Lbm)
        .run_one()
        .expect("user-level runtime on a known benchmark");
    assert_eq!(r.attribution.total(), r.total_cycles.raw());
    assert_eq!(r.attribution.preload_work, 0);
}

/// Every `FaultResolved` event either has no parent (a cold fault the
/// predictor never saw coming) or parents the `PreloadStart` /
/// `SipPrefetchStart` span whose page the fault collided with.
#[test]
fn fault_resolved_parents_are_preload_spans() {
    for scheme in Scheme::ALL {
        for preset in ChaosPreset::ALL {
            let (sink, collected) = CollectingSink::new();
            let _ = SimRun::new(&cfg(preset))
                .scheme(scheme)
                .bench(Benchmark::MixedBlood)
                .sink(Box::new(sink))
                .run_one()
                .expect("kernel scheme on a known benchmark");
            let events = collected.borrow();
            let preload_spans: BTreeSet<u64> = events
                .iter()
                .filter(|e| {
                    matches!(
                        e.what,
                        EventKind::PreloadStart | EventKind::SipPrefetchStart
                    )
                })
                .map(|e| e.span.raw())
                .collect();
            let mut linked = 0u64;
            for e in events.iter() {
                if e.what != EventKind::FaultResolved {
                    continue;
                }
                if let Some(p) = e.parent {
                    assert!(
                        preload_spans.contains(&p.raw()),
                        "{}/{}: fault-resolved at {} parents {p}, not a preload",
                        scheme.name(),
                        preset.name(),
                        e.at,
                    );
                    linked += 1;
                }
            }
            // SIP alone serves instrumented pages with blocking loads, so
            // its faults rarely collide with in-flight work; the DFP
            // family must race at least once on this workload.
            if scheme.uses_dfp() && preset == ChaosPreset::None {
                assert!(
                    linked > 0,
                    "{}: a DFP scheme should race at least one fault \
                     against an in-flight preload on this workload",
                    scheme.name()
                );
            }
        }
    }
}
