//! Property-based tests over the substrate crates: randomized operation
//! sequences must never violate the structural invariants the simulator's
//! correctness rests on.

use proptest::prelude::*;

use sgx_preloading::dfp::{
    AbortPolicy, AbortValve, MultiStreamPredictor, Predictor, ProcessId, StreamConfig,
};
use sgx_preloading::epc::{ClockQueue, VirtPage};
use sgx_preloading::kernel::EventKind;
use sgx_preloading::kernel::{Kernel, KernelConfig};
use sgx_preloading::sip::LruSet;
use sgx_preloading::Cycles;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random fault/access storms: the kernel's shared bitmap always
    /// agrees with EPC residency, residency never exceeds capacity, and
    /// time never runs backwards.
    #[test]
    fn kernel_invariants_hold_under_random_traffic(
        capacity in 4u64..64,
        elrange in 64u64..4_096,
        seed_pages in proptest::collection::vec(0u64..4_096, 20..200),
        gaps in proptest::collection::vec(0u64..100_000, 20..200),
    ) {
        let mut kernel = Kernel::new(
            KernelConfig::new(capacity),
            Box::new(MultiStreamPredictor::new(StreamConfig::paper_defaults())),
        );
        let pid = ProcessId(0);
        kernel.register_enclave(pid, elrange).unwrap();
        let mut now = Cycles::ZERO;
        let mut last_resume = Cycles::ZERO;
        for (page, gap) in seed_pages.iter().zip(gaps.iter()) {
            let local = VirtPage::new(page % elrange);
            now += Cycles::new(*gap);
            if kernel.app_access(now, pid, local).is_none() {
                let r = kernel.page_fault(now, pid, local);
                prop_assert!(r.resume_at >= now, "resume before the fault");
                prop_assert!(r.resume_at >= last_resume, "time went backwards");
                last_resume = r.resume_at;
                now = r.resume_at;
            }
            prop_assert!(kernel.epc().resident_count() <= capacity);
            prop_assert!(kernel.bitmap_consistent(), "bitmap diverged from EPC");
            // The page just accessed must now be resident and visible to SIP.
            prop_assert!(kernel.sip_present(now, pid, local));
        }
        // Preload accounting can never credit more touches than completions.
        prop_assert!(kernel.epc().preloads_touched() <= kernel.epc().preloads_completed());
    }

    /// Algorithm 1: the stream list never exceeds its configured length,
    /// every prediction is a contiguous run adjacent to the fault, and
    /// every fault is either a match or a miss.
    #[test]
    fn stream_predictor_structural_properties(
        list_len in 1usize..40,
        load_length in 1u64..16,
        faults in proptest::collection::vec(0u64..100_000, 1..300),
    ) {
        let cfg = StreamConfig::paper_defaults()
            .with_list_len(list_len)
            .with_load_length(load_length);
        let mut p = MultiStreamPredictor::new(cfg);
        let pid = ProcessId(3);
        for (i, &f) in faults.iter().enumerate() {
            let pred = p.on_fault(Cycles::ZERO, pid, VirtPage::new(f));
            prop_assert!(pred.pages.len() <= load_length as usize);
            for (k, page) in pred.pages.iter().enumerate() {
                let expect_fwd = f + (k as u64 + 1);
                let expect_bwd = f.checked_sub(k as u64 + 1);
                prop_assert!(
                    page.raw() == expect_fwd || Some(page.raw()) == expect_bwd,
                    "prediction {page} not contiguous to fault {f}"
                );
            }
            let list = p.stream_list(pid).unwrap();
            prop_assert!(list.len() <= list_len);
            prop_assert_eq!(list.matches() + list.misses(), i as u64 + 1);
        }
    }

    /// The LRU residency proxy agrees with a naive reference model.
    #[test]
    fn lru_set_matches_reference_model(
        cap in 1usize..32,
        touches in proptest::collection::vec(0u64..64, 1..400),
    ) {
        let mut lru = LruSet::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // most recent last
        for &t in &touches {
            lru.touch(VirtPage::new(t));
            reference.retain(|&x| x != t);
            reference.push(t);
            if reference.len() > cap {
                reference.remove(0);
            }
            prop_assert_eq!(lru.len(), reference.len());
            for &x in &reference {
                prop_assert!(lru.contains(VirtPage::new(x)), "model says {x} is hot");
            }
        }
    }

    /// CLOCK: every inserted page is evicted exactly once, regardless of
    /// the touch pattern interleaved with evictions.
    #[test]
    fn clock_conserves_pages(
        pages in proptest::collection::vec(0u64..1_000, 1..100),
        touches in proptest::collection::vec(0u64..1_000, 0..100),
    ) {
        let mut unique: Vec<u64> = pages.clone();
        unique.sort_unstable();
        unique.dedup();
        let mut clock = ClockQueue::new();
        for &p in &unique {
            clock.insert(VirtPage::new(p), p % 2 == 0);
        }
        for &t in &touches {
            clock.touch(VirtPage::new(t));
        }
        let mut evicted = Vec::new();
        while let Some(v) = clock.evict() {
            evicted.push(v.raw());
        }
        evicted.sort_unstable();
        prop_assert_eq!(evicted, unique);
        prop_assert!(clock.is_empty());
    }

    /// The DFP-stop valve latches: once stopped, no counter values can
    /// restart it.
    #[test]
    fn abort_valve_latches(
        slack in 0u64..1_000,
        observations in proptest::collection::vec((0u64..100_000, 0u64..100_000), 1..100),
    ) {
        let mut valve = AbortValve::new(
            AbortPolicy::paper_defaults()
                .with_slack(slack)
                .with_check_interval(Cycles::new(1)),
        );
        let mut stopped_seen = false;
        for (i, &(preloaded, accessed)) in observations.iter().enumerate() {
            let stopped = valve.observe(Cycles::new(i as u64 + 1), preloaded, accessed);
            if stopped_seen {
                prop_assert!(stopped, "valve un-latched");
            }
            stopped_seen = stopped;
        }
    }

    /// Fault service cost is bounded below by the hardware minimum
    /// (AEX + handler + ERESUME) and above by one full channel drain.
    #[test]
    fn fault_cost_bounds(
        pages in proptest::collection::vec(0u64..256, 1..100),
    ) {
        let mut kernel = Kernel::new(
            KernelConfig::new(16),
            Box::new(MultiStreamPredictor::new(StreamConfig::paper_defaults())),
        );
        let pid = ProcessId(0);
        kernel.register_enclave(pid, 256).unwrap();
        let costs = *kernel.costs();
        let floor = costs.aex + costs.os_fault_path + costs.eresume;
        // Worst case: wait out an in-flight load, one eviction, one load.
        let ceiling = floor + costs.eldu * 2 + costs.ewb * 2;
        let mut now = Cycles::ZERO;
        for &p in &pages {
            let local = VirtPage::new(p);
            if kernel.app_access(now, pid, local).is_none() {
                let r = kernel.page_fault(now, pid, local);
                let cost = r.resume_at - now;
                prop_assert!(cost >= floor, "fault cheaper than hardware floor: {cost}");
                prop_assert!(cost <= ceiling, "fault cost {cost} above ceiling {ceiling}");
                now = r.resume_at;
            }
            now += Cycles::new(1);
        }
    }
}

/// A DFP-stop kernel with a twitchy valve: small slack, frequent checks.
fn valve_kernel() -> (Kernel, ProcessId) {
    let mut kernel = Kernel::new(
        KernelConfig::new(256).with_abort_policy(
            AbortPolicy::paper_defaults()
                .with_slack(8)
                .with_check_interval(Cycles::new(1_000)),
        ),
        Box::new(MultiStreamPredictor::new(StreamConfig::paper_defaults())),
    );
    let pid = ProcessId(0);
    kernel.register_enclave(pid, 1 << 20).unwrap();
    (kernel, pid)
}

/// Faults `page` if needed and returns a time comfortably after the
/// resume, so the load channel can drain any queued preloads.
fn touch(kernel: &mut Kernel, pid: ProcessId, now: Cycles, page: u64) -> Cycles {
    let local = VirtPage::new(page);
    if kernel.app_access(now, pid, local).is_some() {
        now + Cycles::new(1)
    } else {
        kernel.page_fault(now, pid, local).resume_at + Cycles::new(100_000)
    }
}

/// DFP-stop safety valve, positive case: an adversarially irregular
/// workload — short adjacent-fault runs that establish a stream, then a
/// far jump so every preloaded page goes to waste — must trip the valve.
#[test]
fn valve_trips_on_adversarial_irregular_workload() {
    let (mut kernel, pid) = valve_kernel();
    let (sink, events) = sgx_preloading::CollectingSink::new();
    kernel.subscribe(Box::new(sink));
    let mut now = Cycles::ZERO;
    for i in 0..400u64 {
        // Two adjacent faults convince Algorithm 1 it found a stream and
        // queue LOADLENGTH preloads past base+1 …
        let base = i * 100;
        now = touch(&mut kernel, pid, now, base);
        now = touch(&mut kernel, pid, now, base + 1);
        // … which the jump to the next base never touches.
        if kernel.is_preload_stopped() {
            break;
        }
    }
    assert!(
        kernel.is_preload_stopped(),
        "adversarial workload should trip the DFP-stop valve \
         (completed {} vs touched {})",
        kernel.epc().preloads_completed(),
        kernel.epc().preloads_touched()
    );
    let stats = kernel.stats();
    let stopped_at = stats.dfp_stopped_at.expect("valve records its stop time");
    let fired: Vec<_> = events
        .borrow()
        .iter()
        .filter(|e| e.what == EventKind::ValveStopped)
        .cloned()
        .collect();
    assert_eq!(fired.len(), 1, "the valve fires exactly once");
    assert_eq!(fired[0].at, stopped_at);

    // The valve latches: more of the same traffic never restarts
    // preloading.
    let started_at_stop = kernel.stats().preloads_started;
    for i in 400..440u64 {
        now = touch(&mut kernel, pid, now, i * 100);
        now = touch(&mut kernel, pid, now, i * 100 + 1);
    }
    assert!(kernel.is_preload_stopped());
    assert_eq!(kernel.stats().preloads_started, started_at_stop);
    assert_eq!(kernel.preload_queue_len(), 0);
}

/// DFP-stop safety valve, negative case: a well-behaved sequential walk
/// touches what it preloads, so the valve must stay open and preloading
/// keeps absorbing faults.
#[test]
fn valve_stays_open_on_sequential_walk() {
    let (mut kernel, pid) = valve_kernel();
    let mut now = Cycles::ZERO;
    for page in 0..4_000u64 {
        now = touch(&mut kernel, pid, now, page);
        assert!(
            !kernel.is_preload_stopped(),
            "sequential walk tripped the valve at page {page} \
             (completed {} vs touched {})",
            kernel.epc().preloads_completed(),
            kernel.epc().preloads_touched()
        );
    }
    assert!(kernel.stats().dfp_stopped_at.is_none());
    assert!(
        kernel.stats().preloads_started > 0,
        "the walk should have exercised the preload path at all"
    );
}
