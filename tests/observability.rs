//! Integration tests for the streaming observability layer: trace sinks
//! subscribed through [`SimRun`], the histogram percentiles surfaced in
//! [`RunReport`], and their agreement with the simulator's own counters.

use sgx_preloading::prelude::*;
use sgx_preloading::{CollectingSink, HistogramSink};

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::new(64))
}

const KERNEL_SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Dfp,
    Scheme::DfpStop,
    Scheme::Sip,
    Scheme::Hybrid,
];

/// The acceptance bar for the sink layer: on every benchmark × kernel
/// scheme, the tallies a `CountingSink` reconstructs from the event stream
/// must match the counters the simulator reports — nothing is emitted
/// twice, nothing is dropped.
#[test]
fn counting_sink_matches_report_counters_on_every_workload() {
    let c = cfg();
    for bench in Benchmark::ALL {
        for scheme in KERNEL_SCHEMES {
            let (sink, counts) = CountingSink::new();
            let r = SimRun::new(&c)
                .scheme(scheme)
                .bench(bench)
                .sink(Box::new(sink))
                .run_one()
                .unwrap();
            let ev = counts.get();
            let ctx = format!("{}/{}", bench.name(), scheme.name());
            assert_eq!(ev.faults, r.faults, "{ctx}: faults");
            assert_eq!(ev.faults_resolved, r.faults, "{ctx}: every fault resolves");
            assert_eq!(ev.preload_starts, r.preloads_started, "{ctx}: preloads");
            assert_eq!(ev.preload_aborts, r.preloads_aborted, "{ctx}: aborts");
            assert_eq!(
                ev.background_evictions, r.background_evictions,
                "{ctx}: background evictions"
            );
            assert_eq!(
                ev.foreground_evictions, r.foreground_evictions,
                "{ctx}: foreground evictions"
            );
            assert_eq!(
                ev.valve_stops,
                u64::from(r.dfp_stopped_at.is_some()),
                "{ctx}: valve"
            );
            assert!(
                ev.demand_loads <= ev.faults,
                "{ctx}: demand loads are a subset of faults"
            );
            assert!(
                ev.preload_hits <= r.preloads_touched,
                "{ctx}: a lead is recorded only for touched preloads"
            );
        }
    }
}

/// Every subscribed sink observes the same stream, in the same order.
#[test]
fn all_sinks_see_the_same_stream_in_order() {
    let c = cfg();
    let (first, a) = CollectingSink::new();
    let (second, b) = CollectingSink::new();
    SimRun::new(&c)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Lbm)
        .sink(Box::new(first))
        .sink(Box::new(second))
        .run_one()
        .unwrap();
    let a = a.borrow();
    assert!(!a.is_empty(), "a faulting run emits events");
    assert_eq!(*a, *b.borrow());
}

/// A sink-free run produces byte-identical results to a fully observed
/// one: observation never perturbs the simulation.
#[test]
fn sinks_do_not_perturb_the_simulation() {
    let c = cfg();
    let plain = SimRun::new(&c)
        .scheme(Scheme::Hybrid)
        .bench(Benchmark::Deepsjeng)
        .run_one()
        .unwrap();
    let (counting, _counts) = CountingSink::new();
    let (hist, _h) = HistogramSink::new();
    let observed = SimRun::new(&c)
        .scheme(Scheme::Hybrid)
        .bench(Benchmark::Deepsjeng)
        .sink(Box::new(counting))
        .sink(Box::new(hist))
        .run_one()
        .unwrap();
    assert_eq!(plain, observed);
}

/// Fault-latency percentiles surface in the report, are ordered, and are
/// identical for 1, 2 and 4 campaign workers (the figure-determinism
/// acceptance bar).
#[test]
fn percentiles_are_ordered_and_deterministic_across_jobs() {
    use sgx_preloading::{Campaign, SeedMode};
    let campaign = Campaign::grid(
        "pctl",
        42,
        &[Benchmark::Microbenchmark, Benchmark::Lbm],
        &[Scheme::Baseline, Scheme::Dfp],
        cfg(),
    )
    .with_seed_mode(SeedMode::Shared);
    let one = campaign.run_with_jobs(1).expect("campaign run failed");
    let two = campaign.run_with_jobs(2).expect("campaign run failed");
    let four = campaign.run_with_jobs(4).expect("campaign run failed");
    assert_eq!(one.to_canonical_json(), two.to_canonical_json());
    assert_eq!(one.to_canonical_json(), four.to_canonical_json());
    assert!(one.to_canonical_json().contains("\"fault_service_p50\""));
    for cell in &one.cells {
        let r = &cell.report;
        assert!(r.faults > 0, "{}: these workloads fault", cell.label);
        assert!(r.fault_service_p50 > Cycles::ZERO, "{}", cell.label);
        assert!(r.fault_service_p50 <= r.fault_service_p90, "{}", cell.label);
        assert!(r.fault_service_p90 <= r.fault_service_p99, "{}", cell.label);
    }
}

/// The terminal `RunEnd` event is emitted exactly once, last, with the
/// run's total cycles as its value — a stream consumer can tell a complete
/// trace from a truncated one and reconcile it against the report without
/// ever seeing the report.
#[test]
fn run_end_is_emitted_once_last_and_reconciles_with_the_report() {
    use sgx_preloading::kernel::EventKind;
    for scheme in KERNEL_SCHEMES {
        let (sink, collected) = CollectingSink::new();
        let r = SimRun::new(&cfg())
            .scheme(scheme)
            .bench(Benchmark::Microbenchmark)
            .sink(Box::new(sink))
            .run_one()
            .expect("kernel scheme on the microbenchmark");
        let events = collected.borrow();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.what == EventKind::RunEnd)
            .collect();
        assert_eq!(ends.len(), 1, "{}: exactly one run-end", scheme.name());
        assert_eq!(
            ends[0].value,
            Some(r.total_cycles.raw()),
            "{}: run-end carries the total",
            scheme.name()
        );
        assert!(ends[0].parent.is_none(), "{}", scheme.name());
        assert_eq!(
            events.last().expect("stream non-empty").what,
            EventKind::RunEnd,
            "{}: run-end is the final event",
            scheme.name()
        );
    }
}

/// `Campaign::with_trace_dir` drops one parseable JSONL file per cell.
#[test]
fn campaign_trace_dir_streams_one_jsonl_file_per_cell() {
    use sgx_preloading::Campaign;
    let dir = std::env::temp_dir().join("sgx_obs_trace_dir_test");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::grid(
        "traced",
        7,
        &[Benchmark::Microbenchmark],
        &[Scheme::Baseline, Scheme::Dfp],
        cfg(),
    )
    .with_trace_dir(&dir);
    let report = campaign.run_with_jobs(2).expect("campaign run failed");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("trace dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        [
            "000_microbenchmark-baseline.jsonl",
            "001_microbenchmark-DFP.jsonl"
        ]
    );
    for (file, cell) in files.iter().zip(&report.cells) {
        let text = std::fs::read_to_string(dir.join(file)).unwrap();
        let faults = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"fault\","))
            .count() as u64;
        assert_eq!(faults, cell.events.faults, "{file}: fault lines");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{file}: {line}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-enclave telemetry is reconstructible from the event stream alone:
/// on a 3-enclave contention run — with and without chaos — partitioning
/// the stream by ELRANGE owner and tallying [`EventCounts`] per enclave
/// reproduces the kernel's own per-tenant counters exactly. Faults, demand
/// loads and aborts attribute to the faulting enclave; preload starts,
/// completions and evictions to the page's owner — both reduce to the
/// page's ELRANGE because tenant mode scopes demand aborts to the
/// faulter's queue.
#[test]
fn per_enclave_event_counts_match_tenant_stats_under_contention_and_chaos() {
    use sgx_preloading::kernel::{Kernel, KernelConfig};
    use sgx_preloading::{
        ChaosSchedule, EventCounts, InputSet, MultiStreamPredictor, ProcessId, StreamConfig,
        TenantPolicy,
    };

    // Consecutive ELRANGEs are 2^24 pages apart, so an event's enclave is
    // its page's high bits (the same rule `Epc::owner_of` applies).
    const STRIDE_SHIFT: u32 = 24;

    let c = cfg();
    for chaos in [None, Some(ChaosSchedule::light(17))] {
        let mut kcfg = KernelConfig::new(c.epc_pages).with_costs(c.costs);
        kcfg.chaos = chaos;
        kcfg.tenant = Some(TenantPolicy::fair(3, c.epc_pages).with_per_enclave_valves(true));
        let mut k = Kernel::new(
            kcfg,
            Box::new(MultiStreamPredictor::new(StreamConfig::paper_defaults())),
        );
        let (sink, events) = CollectingSink::new();
        k.subscribe(Box::new(sink));

        let pids = [ProcessId(0), ProcessId(1), ProcessId(2)];
        for pid in pids {
            k.register_enclave(pid, Benchmark::Lbm.elrange_pages(c.scale))
                .unwrap();
        }
        // The same min-next-instant interleave the SimRun engine uses.
        let mut streams: Vec<_> = (0..3u64)
            .map(|i| Benchmark::Lbm.build(InputSet::Ref, c.scale, c.seed + i))
            .collect();
        let mut clocks = [Cycles::ZERO; 3];
        let mut pending: Vec<_> = streams.iter_mut().map(|s| s.next()).collect();
        while let Some(i) = (0..3)
            .filter(|&i| pending[i].is_some())
            .min_by_key(|&i| clocks[i] + pending[i].as_ref().unwrap().compute)
        {
            let a = pending[i].take().unwrap();
            let now = clocks[i] + a.compute;
            clocks[i] = match k.app_access(now, pids[i], a.page) {
                Some(_) => now,
                None => k.page_fault(now, pids[i], a.page).resume_at,
            };
            pending[i] = streams[i].next();
        }

        let mut per = vec![EventCounts::default(); 3];
        for e in events.borrow().iter() {
            let page = e.page.expect("every event of a DFP run names a page");
            per[(page.raw() >> STRIDE_SHIFT) as usize].record(e);
        }
        for (i, counts) in per.iter().enumerate() {
            let ts = k.tenant_stats(i);
            let ctx = format!("enclave {i}, chaos={}", chaos.is_some());
            assert!(counts.faults > 0, "{ctx}: contention faults");
            assert_eq!(counts.faults, ts.faults, "{ctx}: faults");
            assert_eq!(counts.faults_resolved, ts.faults, "{ctx}: resolutions");
            assert_eq!(counts.demand_loads, ts.demand_loads, "{ctx}: demand loads");
            assert_eq!(counts.preload_starts, ts.preload_starts, "{ctx}: starts");
            assert_eq!(counts.preload_dones, ts.preload_dones, "{ctx}: dones");
            assert_eq!(counts.preload_aborts, ts.preload_aborts, "{ctx}: aborts");
            assert_eq!(
                counts.background_evictions, ts.background_evictions,
                "{ctx}: background evictions"
            );
            assert_eq!(
                counts.foreground_evictions, ts.foreground_evictions,
                "{ctx}: foreground evictions"
            );
        }
    }
}

/// The same partition rule ties the stream to the public [`SimRun`]
/// surface: per-enclave fault tallies match each app's report, and the
/// per-enclave preload starts sum to the kernel-global counter.
#[test]
fn stream_partition_agrees_with_per_app_reports_on_contention() {
    use sgx_preloading::{AppSpec, EventCounts, InputSet, TenantPolicy};
    let c = cfg().with_tenant_policy(TenantPolicy::fair(3, cfg().epc_pages));
    let mk = |i: u64| {
        AppSpec::new(
            format!("lbm#{i}"),
            Benchmark::Lbm.elrange_pages(c.scale),
            Benchmark::Lbm.build(InputSet::Ref, c.scale, c.seed + i),
        )
        .build()
        .unwrap()
    };
    let (sink, events) = CollectingSink::new();
    let reports = SimRun::new(&c)
        .scheme(Scheme::Dfp)
        .apps(vec![mk(0), mk(1), mk(2)])
        .sink(Box::new(sink))
        .run()
        .unwrap();
    let mut per = vec![EventCounts::default(); 3];
    for e in events.borrow().iter() {
        if let Some(page) = e.page {
            per[(page.raw() >> 24) as usize].record(e);
        }
    }
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(per[i].faults, r.faults, "app {i}: faults");
        assert_eq!(per[i].faults_resolved, r.faults, "app {i}: resolutions");
    }
    let started: u64 = per.iter().map(|c| c.preload_starts).sum();
    assert_eq!(started, reports[0].preloads_started, "global preload tally");
}

/// The JSONL writer and the tail ring agree with the collecting sink on
/// the same run.
#[test]
fn jsonl_and_tail_sinks_agree_with_collector() {
    use sgx_preloading::TailSink;
    let c = cfg();
    let path = std::env::temp_dir().join("sgx_obs_jsonl_test.jsonl");
    let _ = std::fs::remove_file(&path);
    let (collector, events) = CollectingSink::new();
    let (tail, ring) = TailSink::new(5);
    let writer = JsonlWriterSink::create(&path).unwrap();
    SimRun::new(&c)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(collector))
        .sink(Box::new(tail))
        .sink(Box::new(writer))
        .run_one()
        .unwrap();
    let events = events.borrow();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), events.len());
    let ring = ring.borrow();
    assert_eq!(ring.len(), 5);
    let last5: Vec<_> = events.iter().rev().take(5).rev().cloned().collect();
    assert_eq!(Vec::from_iter(ring.iter().cloned()), last5);
    let _ = std::fs::remove_file(&path);
}
