//! Integration tests for the streaming observability layer: trace sinks
//! subscribed through [`SimRun`], the histogram percentiles surfaced in
//! [`RunReport`], and their agreement with the simulator's own counters.

use sgx_preloading::{
    Benchmark, CollectingSink, CountingSink, Cycles, HistogramSink, JsonlWriterSink, Scale, Scheme,
    SimConfig, SimRun,
};

fn cfg() -> SimConfig {
    SimConfig::at_scale(Scale::new(64))
}

const KERNEL_SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Dfp,
    Scheme::DfpStop,
    Scheme::Sip,
    Scheme::Hybrid,
];

/// The acceptance bar for the sink layer: on every benchmark × kernel
/// scheme, the tallies a `CountingSink` reconstructs from the event stream
/// must match the counters the simulator reports — nothing is emitted
/// twice, nothing is dropped.
#[test]
fn counting_sink_matches_report_counters_on_every_workload() {
    let c = cfg();
    for bench in Benchmark::ALL {
        for scheme in KERNEL_SCHEMES {
            let (sink, counts) = CountingSink::new();
            let r = SimRun::new(&c)
                .scheme(scheme)
                .bench(bench)
                .sink(Box::new(sink))
                .run_one()
                .unwrap();
            let ev = counts.get();
            let ctx = format!("{}/{}", bench.name(), scheme.name());
            assert_eq!(ev.faults, r.faults, "{ctx}: faults");
            assert_eq!(ev.faults_resolved, r.faults, "{ctx}: every fault resolves");
            assert_eq!(ev.preload_starts, r.preloads_started, "{ctx}: preloads");
            assert_eq!(ev.preload_aborts, r.preloads_aborted, "{ctx}: aborts");
            assert_eq!(
                ev.background_evictions, r.background_evictions,
                "{ctx}: background evictions"
            );
            assert_eq!(
                ev.foreground_evictions, r.foreground_evictions,
                "{ctx}: foreground evictions"
            );
            assert_eq!(
                ev.valve_stops,
                u64::from(r.dfp_stopped_at.is_some()),
                "{ctx}: valve"
            );
            assert!(
                ev.demand_loads <= ev.faults,
                "{ctx}: demand loads are a subset of faults"
            );
            assert!(
                ev.preload_hits <= r.preloads_touched,
                "{ctx}: a lead is recorded only for touched preloads"
            );
        }
    }
}

/// Every subscribed sink observes the same stream, in the same order.
#[test]
fn all_sinks_see_the_same_stream_in_order() {
    let c = cfg();
    let (first, a) = CollectingSink::new();
    let (second, b) = CollectingSink::new();
    SimRun::new(&c)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Lbm)
        .sink(Box::new(first))
        .sink(Box::new(second))
        .run_one()
        .unwrap();
    let a = a.borrow();
    assert!(!a.is_empty(), "a faulting run emits events");
    assert_eq!(*a, *b.borrow());
}

/// A sink-free run produces byte-identical results to a fully observed
/// one: observation never perturbs the simulation.
#[test]
fn sinks_do_not_perturb_the_simulation() {
    let c = cfg();
    let plain = SimRun::new(&c)
        .scheme(Scheme::Hybrid)
        .bench(Benchmark::Deepsjeng)
        .run_one()
        .unwrap();
    let (counting, _counts) = CountingSink::new();
    let (hist, _h) = HistogramSink::new();
    let observed = SimRun::new(&c)
        .scheme(Scheme::Hybrid)
        .bench(Benchmark::Deepsjeng)
        .sink(Box::new(counting))
        .sink(Box::new(hist))
        .run_one()
        .unwrap();
    assert_eq!(plain, observed);
}

/// Fault-latency percentiles surface in the report, are ordered, and are
/// identical for 1, 2 and 4 campaign workers (the figure-determinism
/// acceptance bar).
#[test]
fn percentiles_are_ordered_and_deterministic_across_jobs() {
    use sgx_preloading::{Campaign, SeedMode};
    let campaign = Campaign::grid(
        "pctl",
        42,
        &[Benchmark::Microbenchmark, Benchmark::Lbm],
        &[Scheme::Baseline, Scheme::Dfp],
        cfg(),
    )
    .with_seed_mode(SeedMode::Shared);
    let one = campaign.run_with_jobs(1);
    let two = campaign.run_with_jobs(2);
    let four = campaign.run_with_jobs(4);
    assert_eq!(one.to_canonical_json(), two.to_canonical_json());
    assert_eq!(one.to_canonical_json(), four.to_canonical_json());
    assert!(one.to_canonical_json().contains("\"fault_service_p50\""));
    for cell in &one.cells {
        let r = &cell.report;
        assert!(r.faults > 0, "{}: these workloads fault", cell.label);
        assert!(r.fault_service_p50 > Cycles::ZERO, "{}", cell.label);
        assert!(r.fault_service_p50 <= r.fault_service_p90, "{}", cell.label);
        assert!(r.fault_service_p90 <= r.fault_service_p99, "{}", cell.label);
    }
}

/// `Campaign::with_trace_dir` drops one parseable JSONL file per cell.
#[test]
fn campaign_trace_dir_streams_one_jsonl_file_per_cell() {
    use sgx_preloading::Campaign;
    let dir = std::env::temp_dir().join("sgx_obs_trace_dir_test");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::grid(
        "traced",
        7,
        &[Benchmark::Microbenchmark],
        &[Scheme::Baseline, Scheme::Dfp],
        cfg(),
    )
    .with_trace_dir(&dir);
    let report = campaign.run_with_jobs(2);
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("trace dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        [
            "000_microbenchmark-baseline.jsonl",
            "001_microbenchmark-DFP.jsonl"
        ]
    );
    for (file, cell) in files.iter().zip(&report.cells) {
        let text = std::fs::read_to_string(dir.join(file)).unwrap();
        let faults = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"fault\","))
            .count() as u64;
        assert_eq!(faults, cell.events.faults, "{file}: fault lines");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{file}: {line}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The JSONL writer and the tail ring agree with the collecting sink on
/// the same run.
#[test]
fn jsonl_and_tail_sinks_agree_with_collector() {
    use sgx_preloading::TailSink;
    let c = cfg();
    let path = std::env::temp_dir().join("sgx_obs_jsonl_test.jsonl");
    let _ = std::fs::remove_file(&path);
    let (collector, events) = CollectingSink::new();
    let (tail, ring) = TailSink::new(5);
    let writer = JsonlWriterSink::create(&path).unwrap();
    SimRun::new(&c)
        .scheme(Scheme::Dfp)
        .bench(Benchmark::Microbenchmark)
        .sink(Box::new(collector))
        .sink(Box::new(tail))
        .sink(Box::new(writer))
        .run_one()
        .unwrap();
    let events = events.borrow();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), events.len());
    let ring = ring.borrow();
    assert_eq!(ring.len(), 5);
    let last5: Vec<_> = events.iter().rev().take(5).rev().cloned().collect();
    assert_eq!(Vec::from_iter(ring.iter().cloned()), last5);
    let _ = std::fs::remove_file(&path);
}
