//! The paper's real-world scenario (§5.3–5.4): SIFT and MSER from the San
//! Diego Vision Benchmark Suite, plus the *mixed-blood* synthetic that
//! scans an image sequentially and then runs MSER on it.
//!
//! SIFT is stream-shaped (DFP's territory), MSER is irregular (SIP's
//! territory), and mixed-blood needs both — which is exactly what the
//! output shows.
//!
//! ```text
//! cargo run --release --example image_pipeline -- dev
//! ```

use sgx_preloading::prelude::*;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("dev") => Scale::DEV,
        Some("quarter") => Scale::QUARTER,
        _ => Scale::FULL,
    };
    let cfg = SimConfig::at_scale(scale);

    println!(
        "== medical-imaging enclave pipeline (scale 1/{}) ==",
        scale.divisor()
    );
    println!("profiling input: one sample image; measurement: fresh images\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}   notes",
        "app", "baseline", "DFP", "SIP", "SIP+DFP"
    );

    for bench in [Benchmark::Sift, Benchmark::Mser, Benchmark::MixedBlood] {
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        let mut cells = Vec::new();
        let mut sip_points = 0;
        for scheme in [Scheme::DfpStop, Scheme::Sip, Scheme::Hybrid] {
            let r = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            if scheme == Scheme::Sip {
                sip_points = r.instrumentation_points;
            }
            cells.push(format!("{:+9.1}%", r.improvement_over(&base) * 100.0));
        }
        println!(
            "{:<12} {:>10} {} {} {}   {} SIP points, {} faults at baseline",
            bench.name(),
            "1.000",
            cells[0],
            cells[1],
            cells[2],
            sip_points,
            base.faults
        );
    }

    println!(
        "\npaper's reference numbers: SIFT +9.5% (DFP), MSER +3.0% (SIP), \
         mixed-blood +1.6% SIP / +6.0% DFP / +7.1% hybrid"
    );
}
