//! Bring your own predictor: the `Predictor` trait is the extension point
//! the paper's §4.1 gestures at ("many complex strategies can be
//! implemented that include heuristic schemes or even machine learning
//! based schemes").
//!
//! This example implements a *history window* predictor — preload every
//! page within ±W of the fault — plugs it into the kernel beside the
//! paper's multiple-stream predictor and the shipped baselines, and races
//! them all on two workload shapes.
//!
//! ```text
//! cargo run --release --example custom_predictor -- dev
//! ```

use sgx_preloading::kernel::{Kernel, KernelConfig};
use sgx_preloading::prelude::*;
use sgx_preloading::{NoPredictor, Predictor, ProcessId, StreamConfig, VirtPage};

/// Preloads the `width` pages surrounding every fault — a deliberately
/// blunt spatial scheme, useful as a foil for Algorithm 1.
struct NeighborhoodPredictor {
    width: u64,
}

impl Predictor for NeighborhoodPredictor {
    // `on_fault_into` is the one required method: append the pages to
    // preload to the kernel's reused scratch buffer, most-urgent first.
    fn on_fault_into(
        &mut self,
        _now: Cycles,
        _pid: ProcessId,
        npn: VirtPage,
        out: &mut Vec<VirtPage>,
    ) {
        for k in 1..=self.width {
            out.push(npn.offset(k));
            if npn.raw() >= k {
                out.push(VirtPage::new(npn.raw() - k));
            }
        }
    }

    fn name(&self) -> &'static str {
        "neighborhood"
    }

    fn reset(&mut self) {}
}

/// Runs `bench` on a kernel armed with `predictor` and reports total time.
fn race(bench: Benchmark, cfg: &SimConfig, predictor: Box<dyn Predictor>) -> (u64, f64) {
    let mut kernel = Kernel::new(
        KernelConfig::new(cfg.epc_pages).with_costs(cfg.costs),
        predictor,
    );
    let pid = ProcessId(0);
    kernel
        .register_enclave(pid, bench.elrange_pages(cfg.scale))
        .expect("fresh kernel");
    // Drive the kernel manually — the same loop `SimRun` uses, shown
    // here in the open so custom integrations have a template.
    let mut now = Cycles::ZERO;
    for access in bench.build(InputSet::Ref, cfg.scale, cfg.seed) {
        now += access.compute;
        if kernel.app_access(now, pid, access.page).is_none() {
            now = kernel.page_fault(now, pid, access.page).resume_at;
        }
    }
    let epc = kernel.epc();
    let denom = (epc.preloads_touched() + epc.preloads_evicted_untouched()).max(1);
    (now.raw(), epc.preloads_touched() as f64 / denom as f64)
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("dev") => Scale::DEV,
        Some("quarter") => Scale::QUARTER,
        _ => Scale::FULL,
    };
    let cfg = SimConfig::at_scale(scale);

    for bench in [Benchmark::Lbm, Benchmark::Roms] {
        // Baseline via the high-level API, for comparison.
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .app(
                AppSpec::new(
                    bench.name(),
                    bench.elrange_pages(cfg.scale),
                    bench.build(InputSet::Ref, cfg.scale, cfg.seed),
                )
                .build()
                .expect("non-empty ELRANGE"),
            )
            .run_one()
            .expect("one report");

        println!(
            "\n== {} (baseline {} cycles) ==",
            bench.name(),
            base.total_cycles
        );
        // Every shipped predictor is reachable by name through
        // `PredictorKind`; a custom one slots in beside them.
        let stream = StreamConfig::paper_defaults();
        let mut contenders: Vec<Box<dyn Predictor>> = vec![Box::new(NoPredictor)];
        contenders.extend(PredictorKind::ALL.iter().map(|kind| kind.build(stream)));
        contenders.push(Box::new(NeighborhoodPredictor { width: 2 }));
        for p in contenders {
            let name = p.name();
            let (cycles, accuracy) = race(bench, &cfg, p);
            let imp = 1.0 - cycles as f64 / base.total_cycles.raw() as f64;
            println!(
                "  {:<13} {:+6.1}%   preload accuracy {:5.1}%",
                name,
                imp * 100.0,
                accuracy * 100.0
            );
        }
    }
    println!(
        "\nAlgorithm 1 (multi-stream) leads on lbm; blunt spatial predictors \
         flood the non-preemptible load channel. On roms the zoo's majority-\
         vote (leap) and stride detectors win outright — the kind of scheme \
         the paper's §4.1 leaves as future design space."
    );
}
