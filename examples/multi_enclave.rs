//! Multi-enclave EPC contention (paper §5.6): several enclaves share the
//! same 96 MiB EPC and the same exclusive load channel. Each enclave's
//! preloading works independently, but the shared resources shrink.
//!
//! ```text
//! cargo run --release --example multi_enclave -- dev
//! ```

use sgx_preloading::prelude::*;

fn apps(cfg: &SimConfig, n: usize) -> Vec<AppSpec> {
    (0..n)
        .map(|i| {
            AppSpec::new(
                format!("lbm#{i}"),
                Benchmark::Lbm.elrange_pages(cfg.scale),
                Benchmark::Lbm.build(InputSet::Ref, cfg.scale, cfg.seed + i as u64),
            )
            .build()
            .expect("non-empty ELRANGE")
        })
        .collect()
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("dev") => Scale::DEV,
        Some("quarter") => Scale::QUARTER,
        _ => Scale::FULL,
    };
    let cfg = SimConfig::at_scale(scale);

    println!("== EPC contention: N copies of lbm sharing one EPC ==\n");
    println!(
        "{:>2} {:>18} {:>18} {:>10} {:>12}",
        "N", "baseline/app", "DFP/app", "DFP gain", "vs solo"
    );

    let mut solo_cycles = 0u64;
    for n in [1usize, 2, 4] {
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .apps(apps(&cfg, n))
            .run()
            .unwrap();
        let dfp = SimRun::new(&cfg)
            .scheme(Scheme::DfpStop)
            .apps(apps(&cfg, n))
            .run()
            .unwrap();
        let base_mean = base.iter().map(|r| r.total_cycles.raw()).sum::<u64>() / n as u64;
        let dfp_mean = dfp.iter().map(|r| r.total_cycles.raw()).sum::<u64>() / n as u64;
        if n == 1 {
            solo_cycles = base_mean;
        }
        println!(
            "{:>2} {:>18} {:>18} {:>+9.1}% {:>11.2}x",
            n,
            base_mean,
            dfp_mean,
            (1.0 - dfp_mean as f64 / base_mean as f64) * 100.0,
            base_mean as f64 / solo_cycles as f64
        );
    }

    println!(
        "\nWith one enclave the preloader exploits idle channel time; once \
         enclaves contend, demand faults saturate the exclusive load channel, \
         the preload worker starves, and DFP degenerates gracefully to the \
         baseline — the §5.6 contention/fairness problem the paper defers to \
         cache-partitioning literature."
    );
}
