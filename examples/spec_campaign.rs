//! The full SPEC-style evaluation campaign: every benchmark of the paper's
//! Table 1 under every scheme, printed as one summary table (the union of
//! Figs. 8, 10 and 12).
//!
//! ```text
//! cargo run --release --example spec_campaign -- dev
//! ```

use sgx_preloading::prelude::*;
use sgx_workloads::Category;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("dev") => Scale::DEV,
        Some("quarter") => Scale::QUARTER,
        _ => Scale::FULL,
    };
    let cfg = SimConfig::at_scale(scale);

    println!(
        "== SPEC campaign at scale 1/{} (EPC = {} pages) ==\n",
        scale.divisor(),
        cfg.epc_pages
    );
    println!(
        "{:<16} {:<14} {:>9} {:>9} {:>9} {:>9}  {:>7} {:>6}",
        "benchmark", "class", "DFP", "DFP-stop", "SIP", "SIP+DFP", "faults", "points"
    );

    let mut improvements: Vec<(Scheme, f64)> = Vec::new();
    for bench in Benchmark::ALL {
        let base = SimRun::new(&cfg)
            .scheme(Scheme::Baseline)
            .bench(bench)
            .run_one()
            .unwrap();
        let class = match bench.category() {
            Category::SmallWorkingSet => "small WS",
            Category::LargeIrregular => "large/irreg",
            Category::LargeRegular => "large/regular",
            Category::RealWorld => "real-world",
            Category::Synthetic => "synthetic",
            Category::Diverse => "diverse",
        };
        print!("{:<16} {:<14}", bench.name(), class);
        let mut points = 0;
        for scheme in [Scheme::Dfp, Scheme::DfpStop, Scheme::Sip, Scheme::Hybrid] {
            let r = SimRun::new(&cfg)
                .scheme(scheme)
                .bench(bench)
                .run_one()
                .unwrap();
            let imp = r.improvement_over(&base);
            improvements.push((scheme, imp));
            points = points.max(r.instrumentation_points);
            print!(" {:+8.1}%", imp * 100.0);
        }
        println!("  {:>7} {:>6}", base.faults, points);
    }

    println!("\naverages over benchmarks where the scheme is active:");
    for scheme in [Scheme::Dfp, Scheme::DfpStop, Scheme::Sip, Scheme::Hybrid] {
        let xs: Vec<f64> = improvements
            .iter()
            .filter(|(s, imp)| *s == scheme && imp.abs() > 1e-9)
            .map(|(_, imp)| *imp)
            .collect();
        if !xs.is_empty() {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            println!(
                "  {:<9} {:+.1}% over {} benchmarks",
                scheme.name(),
                mean * 100.0,
                xs.len()
            );
        }
    }
    println!(
        "\npaper reference: DFP +11.4% avg on regular benchmarks (max +18.6%), \
         SIP +7.0% avg (max +9.0%), hybrid +7.1% on mixed workloads"
    );
}
