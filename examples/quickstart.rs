//! Quickstart: reproduce the paper's headline story in one page of code.
//!
//! Runs the 1 GiB sequential microbenchmark (paper §1/§5) three ways —
//! outside any enclave, inside an enclave with the vanilla driver, and
//! inside an enclave with DFP preloading — and prints the motivation
//! slowdown plus DFP's recovery.
//!
//! ```text
//! cargo run --release --example quickstart            # paper scale
//! cargo run --release --example quickstart -- dev     # 1/16 scale, fast
//! ```

use sgx_preloading::prelude::*;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("dev") => Scale::DEV,
        Some("quarter") => Scale::QUARTER,
        _ => Scale::FULL,
    };
    let cfg = SimConfig::at_scale(scale);
    let bench = Benchmark::Microbenchmark;

    println!(
        "== microbenchmark: sequential scan of 1 GiB (scale 1/{}) ==\n",
        scale.divisor()
    );

    let outside = SimRun::new(&cfg)
        .outside(
            "outside enclave",
            bench.build(InputSet::Ref, cfg.scale, cfg.seed),
        )
        .run_one()
        .unwrap();
    let baseline = SimRun::new(&cfg)
        .scheme(Scheme::Baseline)
        .bench(bench)
        .run_one()
        .unwrap();
    let dfp = SimRun::new(&cfg)
        .scheme(Scheme::Dfp)
        .bench(bench)
        .run_one()
        .unwrap();

    let ghz = 3_500_000_000; // the paper's 3.5 GHz Xeon E3-1240v5
    println!(
        "outside enclave : {:>16} cycles  ({:.2} s at 3.5 GHz), {} first-touch faults",
        outside.total_cycles.to_string(),
        outside.total_cycles.as_secs_at(ghz),
        outside.faults
    );
    println!(
        "inside, vanilla : {:>16} cycles  ({:.2} s), {} EPC faults of ~{} cycles",
        baseline.total_cycles.to_string(),
        baseline.total_cycles.as_secs_at(ghz),
        baseline.faults,
        baseline.fault_service_mean
    );
    println!(
        "inside, DFP     : {:>16} cycles  ({:.2} s), preload accuracy {:.1}%",
        dfp.total_cycles.to_string(),
        dfp.total_cycles.as_secs_at(ghz),
        dfp.preload_accuracy() * 100.0
    );

    let slowdown = baseline.total_cycles.raw() as f64 / outside.total_cycles.raw() as f64;
    println!("\nSGX slowdown    : {slowdown:.1}x   (paper reports ≈46x for this program)");
    println!(
        "DFP improvement : {:+.1}%  (paper reports +18.6%)",
        dfp.improvement_over(&baseline) * 100.0
    );
    println!(
        "seconds regained: {:.2} s per run at 3.5 GHz",
        (baseline.total_cycles - dfp.total_cycles).as_secs_at(ghz)
    );
}
